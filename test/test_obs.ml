(* Tests for Fl_obs: JSONL sink round-trip, span nesting and timing, metric
   registries, the CDCL progress hook, and the contract that the
   per-iteration attack records' solver-stat deltas sum to the session's
   accumulated stats. *)

module Obs = Fl_obs
module Cdcl = Fl_sat.Cdcl
module Generator = Fl_netlist.Generator
module Sat_attack = Fl_attacks.Sat_attack

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let qcheck_case ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Capture every event emitted while [f] runs. *)
let record f =
  let events = ref [] in
  let r = Obs.with_sink (fun e -> events := e :: !events) f in
  r, List.rev !events

let field name e =
  match List.assoc_opt name e.Obs.fields with
  | Some v -> v
  | None -> Alcotest.failf "event %s: missing field %S" e.Obs.name name

let field_int name e =
  match field name e with
  | Obs.Int i -> i
  | _ -> Alcotest.failf "event %s: field %S is not an Int" e.Obs.name name

let field_float name e =
  match field name e with
  | Obs.Float f -> f
  | _ -> Alcotest.failf "event %s: field %S is not a Float" e.Obs.name name

(* ------------------------------------------------------------------ *)
(* Sinks and emission                                                  *)
(* ------------------------------------------------------------------ *)

let test_null_sink_is_default () =
  check bool_t "disabled by default" false (Obs.enabled ());
  (* Emitting with no sink is a no-op, not an error. *)
  Obs.emit "nobody.listens" ~fields:[ "x", Obs.Int 1 ];
  let (), events =
    record (fun () ->
        check bool_t "enabled under with_sink" true (Obs.enabled ()))
  in
  check int_t "no stray events" 0 (List.length events);
  check bool_t "disabled again after with_sink" false (Obs.enabled ())

let test_emit_reaches_all_sinks () =
  let a = ref 0 and b = ref 0 in
  Obs.with_sink
    (fun _ -> incr a)
    (fun () ->
      Obs.with_sink
        (fun _ -> incr b)
        (fun () -> Obs.emit "ping");
      Obs.emit "ping");
  check int_t "outer sink saw both" 2 !a;
  check int_t "inner sink saw one" 1 !b

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let sample_events =
  [
    { Obs.ts = 1234.5; name = "attack.iteration";
      fields =
        [
          "iter", Obs.Int 3;
          "ratio", Obs.Float 3.77;
          "dip", Obs.String "0101";
          "converged", Obs.Bool false;
        ] };
    { Obs.ts = 0.0; name = "weird \"chars\"\n\ttest";
      fields =
        [
          "neg", Obs.Int (-42);
          "tiny", Obs.Float 1.5e-9;
          "exact", Obs.Float 0.1;
          "backslash", Obs.String "a\\b\"c\nd";
          "yes", Obs.Bool true;
        ] };
    { Obs.ts = 1.75e9; name = "empty.fields"; fields = [] };
  ]

let event_eq a b =
  a.Obs.name = b.Obs.name && a.Obs.ts = b.Obs.ts && a.Obs.fields = b.Obs.fields

let test_jsonl_round_trip () =
  List.iter
    (fun e ->
      let line = Obs.Json.to_string e in
      check bool_t "single line" false (String.contains line '\n');
      let back = Obs.Json.of_string line in
      check bool_t
        (Printf.sprintf "round-trip of %s" e.Obs.name)
        true (event_eq e back))
    sample_events

let test_jsonl_file_round_trip () =
  let path = Filename.temp_file "fl_obs_test" ".jsonl" in
  let oc = open_out path in
  let id = Obs.add_sink (Obs.jsonl_sink oc) in
  List.iter (fun e -> Obs.emit ~fields:e.Obs.fields e.Obs.name) sample_events;
  Obs.remove_sink id;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let parsed = List.rev_map Obs.Json.of_string !lines in
  check int_t "one line per event" (List.length sample_events)
    (List.length parsed);
  List.iter2
    (fun e p ->
      check bool_t "name survives" true (e.Obs.name = p.Obs.name);
      check bool_t "fields survive" true (e.Obs.fields = p.Obs.fields);
      check bool_t "ts is emission time, recent" true (p.Obs.ts > 1.0e9))
    sample_events parsed

let test_jsonl_rejects_garbage () =
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" bad)
    [
      "";
      "{";
      "not json";
      "{\"ts\":1.0}";  (* no event member *)
      "{\"event\":\"x\"}";  (* no ts *)
      "{\"ts\":1.0,\"event\":\"x\"} trailing";
      "{\"ts\":1.0,\"event\":\"x\",\"bad\":}";
    ]

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_and_timing () =
  let (), events =
    record (fun () ->
        Obs.with_span "outer" (fun () ->
            check int_t "depth inside outer" 1 (Obs.span_depth ());
            Obs.with_span "inner" (fun () ->
                check int_t "depth inside inner" 2 (Obs.span_depth ());
                Unix.sleepf 0.002)))
  in
  check int_t "depth back to zero" 0 (Obs.span_depth ());
  let names = List.map (fun e -> e.Obs.name) events in
  Alcotest.(check (list string)) "begin/end pairing"
    [ "span.begin:outer"; "span.begin:inner"; "span.end:inner";
      "span.end:outer" ]
    names;
  let ev name = List.find (fun e -> e.Obs.name = name) events in
  check int_t "outer depth field" 0 (field_int "depth" (ev "span.end:outer"));
  check int_t "inner depth field" 1 (field_int "depth" (ev "span.end:inner"));
  let outer_d = field_float "dur_s" (ev "span.end:outer") in
  let inner_d = field_float "dur_s" (ev "span.end:inner") in
  check bool_t "inner took measurable time" true (inner_d >= 0.001);
  check bool_t "outer contains inner" true (outer_d >= inner_d)

let test_span_exception_safe () =
  let (), events =
    record (fun () ->
        (try Obs.with_span "boom" (fun () -> failwith "boom")
         with Failure _ -> ()))
  in
  check int_t "depth restored after raise" 0 (Obs.span_depth ());
  check bool_t "span.end emitted despite raise" true
    (List.exists (fun e -> e.Obs.name = "span.end:boom") events)

let test_span_without_sink_is_transparent () =
  (* No sink: with_span must still run the thunk and return its value. *)
  check int_t "value passes through" 42 (Obs.with_span "quiet" (fun () -> 42));
  check int_t "depth untouched" 0 (Obs.span_depth ())

(* ------------------------------------------------------------------ *)
(* Counters, gauges, registries                                        *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let reg = Obs.Registry.create "test" in
  let c = Obs.Counter.make ~registry:reg "hits" in
  let c' = Obs.Counter.make ~registry:reg "hits" in
  Obs.Counter.incr c;
  Obs.Counter.add c' 4;
  check int_t "same cell through both handles" 5 (Obs.Counter.value c);
  let g = Obs.Gauge.make ~registry:reg "ratio" in
  Obs.Gauge.set g 3.77;
  (match Obs.snapshot ~registry:reg () with
   | [ ("hits", Obs.Int 5); ("ratio", Obs.Float r) ] ->
     check bool_t "gauge value" true (r = 3.77)
   | other -> Alcotest.failf "unexpected snapshot (%d entries)" (List.length other));
  Obs.reset_metrics ~registry:reg ();
  check int_t "counter reset" 0 (Obs.Counter.value c);
  check bool_t "gauge reset" true (Obs.Gauge.value g = 0.0);
  (* A name cannot be both a counter and a gauge. *)
  match Obs.Gauge.make ~registry:reg "hits" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "counter name reused as gauge"

(* ------------------------------------------------------------------ *)
(* CDCL progress hook                                                  *)
(* ------------------------------------------------------------------ *)

let test_cdcl_progress_hook () =
  let rng = Random.State.make [| 11 |] in
  let f = Fl_sat.Random_sat.fixed_length rng ~num_vars:60 ~num_clauses:258 ~k:3 in
  let s = Cdcl.of_formula f in
  let deltas = ref [] in
  Cdcl.set_progress s ~every:16 (fun d -> deltas := d :: !deltas);
  ignore (Cdcl.solve s);
  let total = Cdcl.stats s in
  check bool_t "instance was non-trivial" true (total.Cdcl.conflicts >= 16);
  check bool_t "hook fired" true (!deltas <> []);
  let sum =
    List.fold_left Cdcl.add_stats Cdcl.zero_stats !deltas
  in
  check bool_t "delta conflicts never exceed total" true
    (sum.Cdcl.conflicts <= total.Cdcl.conflicts);
  List.iter
    (fun d ->
      check bool_t "each delta covers >= every conflicts" true
        (d.Cdcl.conflicts >= 16))
    !deltas

(* ------------------------------------------------------------------ *)
(* Attack records: deltas sum to Session.solver_stats                  *)
(* ------------------------------------------------------------------ *)

let is_record e =
  match e.Obs.name with
  | "attack.iteration" | "attack.exhausted" | "attack.timeout" -> true
  | _ -> false

let sum_records events =
  List.fold_left
    (fun acc e ->
      if is_record e then
        Cdcl.add_stats acc
          {
            Cdcl.decisions = field_int "decisions" e;
            propagations = field_int "propagations" e;
            conflicts = field_int "conflicts" e;
            restarts = field_int "restarts" e;
            learned_clauses = field_int "learned_clauses" e;
            learned_literals = field_int "learned_literals" e;
            reductions = field_int "reductions" e;
            max_decision_level = field_int "max_decision_level" e;
          }
      else acc)
    Cdcl.zero_stats events

let attack_deltas_sum_prop seed =
  let c =
    Generator.random ~seed:(200 + seed) ~name:"obs-host"
      { Generator.num_inputs = 5 + (seed mod 4);
        num_outputs = 2 + (seed mod 3);
        num_gates = 30 + (5 * (seed mod 8));
        max_fanin = 3; and_bias = 0.8 }
  in
  let rng = Random.State.make [| seed; 0x0b5 |] in
  let locked = Fl_locking.Rll.lock rng ~key_bits:(4 + (seed mod 5)) c in
  let result, events = record (fun () -> Sat_attack.run ~timeout:30.0 locked) in
  let iter_records =
    List.filter (fun e -> e.Obs.name = "attack.iteration") events
  in
  (* One attack.iteration record per DIP, in order, 1-based. *)
  let indices = List.map (field_int "iter") iter_records in
  let expected_indices =
    List.init result.Sat_attack.iterations (fun i -> i + 1)
  in
  if indices <> expected_indices then
    QCheck2.Test.fail_reportf "iteration indices %s, expected 1..%d"
      (String.concat "," (List.map string_of_int indices))
      result.Sat_attack.iterations;
  (* The record deltas must reproduce the accumulated session stats. *)
  let sum = sum_records events in
  let total = result.Sat_attack.solver in
  if sum <> total then
    QCheck2.Test.fail_reportf
      "record deltas do not sum to solver stats:@.  sum   %a@.  total %a"
      Cdcl.pp_stats sum Cdcl.pp_stats total;
  true

let () =
  Alcotest.run "fl_obs"
    [
      ( "sinks",
        [
          Alcotest.test_case "null sink default" `Quick test_null_sink_is_default;
          Alcotest.test_case "fan-out to all sinks" `Quick
            test_emit_reaches_all_sinks;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "file round-trip" `Quick
            test_jsonl_file_round_trip;
          Alcotest.test_case "rejects garbage" `Quick
            test_jsonl_rejects_garbage;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and timing" `Quick
            test_span_nesting_and_timing;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safe;
          Alcotest.test_case "no-sink transparency" `Quick
            test_span_without_sink_is_transparent;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
      ( "solver",
        [
          Alcotest.test_case "cdcl progress hook" `Quick
            test_cdcl_progress_hook;
        ] );
      ( "attack-records",
        [
          qcheck_case "per-iteration deltas sum to Session.solver_stats"
            QCheck2.Gen.(int_range 0 1000)
            attack_deltas_sum_prop;
        ] );
    ]
