(* Tests for Fl_obs: JSONL sink round-trip, the generic JSON parser, span
   nesting and timing, metric registries, log2 histograms (bucketing,
   striped-merge law, JSON round-trip), span profiles and the folded-stack
   flame contract, the deep-telemetry switch, the CDCL progress hook, the
   contract that the per-iteration attack records' solver-stat deltas sum
   to the session's accumulated stats, and the bench baseline gate. *)

module Obs = Fl_obs
module Cdcl = Fl_sat.Cdcl
module Generator = Fl_netlist.Generator
module Sat_attack = Fl_attacks.Sat_attack

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let qcheck_case ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Capture every event emitted while [f] runs. *)
let record f =
  let events = ref [] in
  let r = Obs.with_sink (fun e -> events := e :: !events) f in
  r, List.rev !events

let field name e =
  match List.assoc_opt name e.Obs.fields with
  | Some v -> v
  | None -> Alcotest.failf "event %s: missing field %S" e.Obs.name name

let field_int name e =
  match field name e with
  | Obs.Int i -> i
  | _ -> Alcotest.failf "event %s: field %S is not an Int" e.Obs.name name

let field_float name e =
  match field name e with
  | Obs.Float f -> f
  | _ -> Alcotest.failf "event %s: field %S is not a Float" e.Obs.name name

(* ------------------------------------------------------------------ *)
(* Sinks and emission                                                  *)
(* ------------------------------------------------------------------ *)

let test_null_sink_is_default () =
  check bool_t "disabled by default" false (Obs.enabled ());
  (* Emitting with no sink is a no-op, not an error. *)
  Obs.emit "nobody.listens" ~fields:[ "x", Obs.Int 1 ];
  let (), events =
    record (fun () ->
        check bool_t "enabled under with_sink" true (Obs.enabled ()))
  in
  check int_t "no stray events" 0 (List.length events);
  check bool_t "disabled again after with_sink" false (Obs.enabled ())

let test_emit_reaches_all_sinks () =
  let a = ref 0 and b = ref 0 in
  Obs.with_sink
    (fun _ -> incr a)
    (fun () ->
      Obs.with_sink
        (fun _ -> incr b)
        (fun () -> Obs.emit "ping");
      Obs.emit "ping");
  check int_t "outer sink saw both" 2 !a;
  check int_t "inner sink saw one" 1 !b

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let sample_events =
  [
    { Obs.ts = 1234.5; name = "attack.iteration";
      fields =
        [
          "iter", Obs.Int 3;
          "ratio", Obs.Float 3.77;
          "dip", Obs.String "0101";
          "converged", Obs.Bool false;
        ] };
    { Obs.ts = 0.0; name = "weird \"chars\"\n\ttest";
      fields =
        [
          "neg", Obs.Int (-42);
          "tiny", Obs.Float 1.5e-9;
          "exact", Obs.Float 0.1;
          "backslash", Obs.String "a\\b\"c\nd";
          "yes", Obs.Bool true;
        ] };
    { Obs.ts = 1.75e9; name = "empty.fields"; fields = [] };
  ]

let event_eq a b =
  a.Obs.name = b.Obs.name && a.Obs.ts = b.Obs.ts && a.Obs.fields = b.Obs.fields

let test_jsonl_round_trip () =
  List.iter
    (fun e ->
      let line = Obs.Json.to_string e in
      check bool_t "single line" false (String.contains line '\n');
      let back = Obs.Json.of_string line in
      check bool_t
        (Printf.sprintf "round-trip of %s" e.Obs.name)
        true (event_eq e back))
    sample_events

let test_jsonl_file_round_trip () =
  let path = Filename.temp_file "fl_obs_test" ".jsonl" in
  let oc = open_out path in
  let id = Obs.add_sink (Obs.jsonl_sink oc) in
  List.iter (fun e -> Obs.emit ~fields:e.Obs.fields e.Obs.name) sample_events;
  Obs.remove_sink id;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let parsed = List.rev_map Obs.Json.of_string !lines in
  check int_t "one line per event" (List.length sample_events)
    (List.length parsed);
  List.iter2
    (fun e p ->
      check bool_t "name survives" true (e.Obs.name = p.Obs.name);
      check bool_t "fields survive" true (e.Obs.fields = p.Obs.fields);
      check bool_t "ts is emission time, recent" true (p.Obs.ts > 1.0e9))
    sample_events parsed

let test_jsonl_rejects_garbage () =
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" bad)
    [
      "";
      "{";
      "not json";
      "{\"ts\":1.0}";  (* no event member *)
      "{\"event\":\"x\"}";  (* no ts *)
      "{\"ts\":1.0,\"event\":\"x\"} trailing";
      "{\"ts\":1.0,\"event\":\"x\",\"bad\":}";
    ]

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_and_timing () =
  let (), events =
    record (fun () ->
        Obs.with_span "outer" (fun () ->
            check int_t "depth inside outer" 1 (Obs.span_depth ());
            Obs.with_span "inner" (fun () ->
                check int_t "depth inside inner" 2 (Obs.span_depth ());
                Unix.sleepf 0.002)))
  in
  check int_t "depth back to zero" 0 (Obs.span_depth ());
  let names = List.map (fun e -> e.Obs.name) events in
  Alcotest.(check (list string)) "begin/end pairing"
    [ "span.begin:outer"; "span.begin:inner"; "span.end:inner";
      "span.end:outer" ]
    names;
  let ev name = List.find (fun e -> e.Obs.name = name) events in
  check int_t "outer depth field" 0 (field_int "depth" (ev "span.end:outer"));
  check int_t "inner depth field" 1 (field_int "depth" (ev "span.end:inner"));
  let outer_d = field_float "dur_s" (ev "span.end:outer") in
  let inner_d = field_float "dur_s" (ev "span.end:inner") in
  check bool_t "inner took measurable time" true (inner_d >= 0.001);
  check bool_t "outer contains inner" true (outer_d >= inner_d)

let test_span_exception_safe () =
  let (), events =
    record (fun () ->
        (try Obs.with_span "boom" (fun () -> failwith "boom")
         with Failure _ -> ()))
  in
  check int_t "depth restored after raise" 0 (Obs.span_depth ());
  check bool_t "span.end emitted despite raise" true
    (List.exists (fun e -> e.Obs.name = "span.end:boom") events)

let test_span_without_sink_is_transparent () =
  (* No sink: with_span must still run the thunk and return its value. *)
  check int_t "value passes through" 42 (Obs.with_span "quiet" (fun () -> 42));
  check int_t "depth untouched" 0 (Obs.span_depth ())

(* ------------------------------------------------------------------ *)
(* Generic JSON parser                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_parse_nested () =
  let j =
    Obs.Json.parse
      {|{"a": [1, 2.5, "x", null], "b": {"c": true, "d": -3}, "e": []}|}
  in
  (match Obs.Json.member "a" j with
   | Some (Obs.Json.Jarr [ Obs.Json.Jint 1; Obs.Json.Jfloat f;
                           Obs.Json.Jstring "x"; Obs.Json.Jnull ]) ->
     check bool_t "2.5 parses" true (f = 2.5)
   | _ -> Alcotest.fail "array member");
  (match Obs.Json.member "b" j with
   | Some b ->
     check bool_t "nested bool" true
       (Obs.Json.member "c" b = Some (Obs.Json.Jbool true));
     check bool_t "nested negative" true
       (match Obs.Json.member "d" b with
        | Some n -> Obs.Json.number n = Some (-3.0)
        | None -> false)
   | None -> Alcotest.fail "object member");
  check bool_t "empty array" true
    (Obs.Json.member "e" j = Some (Obs.Json.Jarr []));
  check bool_t "absent member" true (Obs.Json.member "zz" j = None)

let test_json_string_escapes () =
  (* Encoder output must parse back to the same string, including control
     characters and unicode escapes in the input. *)
  List.iter
    (fun s ->
      let doc = "{\"k\": " ^ Obs.Json.string_to_string s ^ "}" in
      check bool_t (Printf.sprintf "escape round-trip %S" s) true
        (Obs.Json.member "k" (Obs.Json.parse doc)
         = Some (Obs.Json.Jstring s)))
    [ ""; "plain"; "a\"b"; "back\\slash"; "nl\nnl"; "tab\tcr\r";
      "ctrl\x01\x1f"; "del\x7f" ];
  (* \uXXXX escapes decode (ASCII directly, the rest to UTF-8). *)
  check bool_t "unicode escapes" true
    (Obs.Json.member "k" (Obs.Json.parse {|{"k": "\u0041\u000a\u00e9"}|})
     = Some (Obs.Json.Jstring "A\n\xc3\xa9"));
  match Obs.Json.parse {|"bad \q escape"|} with
  | exception Obs.Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "accepted unknown escape"

let test_json_numbers () =
  let num s =
    match Obs.Json.number (Obs.Json.parse s) with
    | Some f -> f
    | None -> Alcotest.failf "%s did not parse as a number" s
  in
  check bool_t "negative" true (num "-42" = -42.0);
  check bool_t "large float" true (num "1.7976931348623157e308" = max_float);
  check bool_t "tiny float" true (num "5e-324" = Float.succ 0.0);
  check bool_t "negative exponent" true (num "-2.5e-3" = -0.0025);
  (* The encoder writes infinities as the out-of-range literal 1e999 and
     nan as null; both must read back. *)
  check bool_t "1e999 reads as infinity" true (num "1e999" = infinity);
  check bool_t "-1e999 reads as -infinity" true (num "-1e999" = neg_infinity);
  let e =
    { Obs.ts = 1.0; name = "nonfinite";
      fields = [ "inf", Obs.Float infinity; "ninf", Obs.Float neg_infinity;
                 "nan", Obs.Float Float.nan ] }
  in
  let back = Obs.Json.of_string (Obs.Json.to_string e) in
  check bool_t "inf round-trips" true
    (List.assoc "inf" back.Obs.fields = Obs.Float infinity);
  check bool_t "-inf round-trips" true
    (List.assoc "ninf" back.Obs.fields = Obs.Float neg_infinity);
  (* nan encodes as null, which the flat event reader maps to "null". *)
  check bool_t "nan becomes null" true
    (List.assoc "nan" back.Obs.fields = Obs.String "null")

let test_of_string_rejects_nested () =
  (* Event lines are flat; the strict reader refuses structured fields. *)
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" bad)
    [
      {|{"ts":1.0,"event":"x","f":[1]}|};
      {|{"ts":1.0,"event":"x","f":{"y":1}}|};
    ]

(* ------------------------------------------------------------------ *)
(* Counters, gauges, registries                                        *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let reg = Obs.Registry.create "test" in
  let c = Obs.Counter.make ~registry:reg "hits" in
  let c' = Obs.Counter.make ~registry:reg "hits" in
  Obs.Counter.incr c;
  Obs.Counter.add c' 4;
  check int_t "same cell through both handles" 5 (Obs.Counter.value c);
  let g = Obs.Gauge.make ~registry:reg "ratio" in
  Obs.Gauge.set g 3.77;
  (match Obs.snapshot ~registry:reg () with
   | [ ("hits", Obs.Int 5); ("ratio", Obs.Float r) ] ->
     check bool_t "gauge value" true (r = 3.77)
   | other -> Alcotest.failf "unexpected snapshot (%d entries)" (List.length other));
  Obs.reset_metrics ~registry:reg ();
  check int_t "counter reset" 0 (Obs.Counter.value c);
  check bool_t "gauge reset" true (Obs.Gauge.value g = 0.0);
  (* A name cannot be both a counter and a gauge. *)
  match Obs.Gauge.make ~registry:reg "hits" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "counter name reused as gauge"

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let hist_reg = Obs.Registry.create "hist-test"

let find_hist ?registry name =
  match
    List.find_opt
      (fun s -> s.Obs.Hist.hname = name)
      (Obs.hist_snapshot ?registry ())
  with
  | Some s -> s
  | None -> Alcotest.failf "histogram %S not in snapshot" name

let test_hist_buckets () =
  List.iter
    (fun (v, b) ->
      check int_t (Printf.sprintf "bucket_of %d" v) b (Obs.Hist.bucket_of v))
    [ min_int, 0; -7, 0; 0, 0; 1, 1; 2, 2; 3, 2; 4, 3; 7, 3; 8, 4;
      1023, 10; 1024, 11; max_int, 62 ];
  (* Bucket i >= 1 holds [2^(i-1), 2^i - 1]: boundaries land where the
     doc says. *)
  for i = 1 to 20 do
    let lo = 1 lsl (i - 1) in
    check int_t "lower edge" i (Obs.Hist.bucket_of lo);
    check int_t "upper edge" i (Obs.Hist.bucket_of ((2 * lo) - 1))
  done

let test_hist_stats () =
  let h = Obs.Hist.make ~registry:hist_reg "stats" in
  check int_t "empty count" 0 (Obs.Hist.count (Obs.Hist.read_cells "stats" h));
  check bool_t "empty quantile" true
    (Obs.Hist.quantile (Obs.Hist.read_cells "stats" h) 0.5 = 0.0);
  for _ = 1 to 50 do Obs.Hist.record h 1 done;
  for _ = 1 to 50 do Obs.Hist.record h 1000 done;
  let s = Obs.Hist.read_cells "stats" h in
  check int_t "count" 100 (Obs.Hist.count s);
  (* 1 lands in bucket 1 (upper bound 1), 1000 in bucket 10 (512..1023). *)
  check bool_t "p50 is the small mode" true (Obs.Hist.quantile s 0.5 = 1.0);
  check bool_t "p90 is the large mode" true (Obs.Hist.quantile s 0.9 = 1023.0);
  check bool_t "max" true (Obs.Hist.max_value s = 1023.0);
  (* Sum estimates from bucket midpoints: 50*1.0 + 50*767.5. *)
  check bool_t "sum estimate" true (abs_float (Obs.Hist.sum s -. 38425.0) < 1e-6)

let test_hist_scaled_time () =
  let h = Obs.Hist.make ~registry:hist_reg ~scale:1e-6 "lat" in
  Obs.Hist.record_time h 1.0e-6;
  Obs.Hist.record_time h 1.0e-3;
  let s = Obs.Hist.read_cells "lat" h in
  check int_t "count" 2 (Obs.Hist.count s);
  (* 1000µs sits in bucket 10; its scaled upper bound is 1023µs. *)
  check bool_t "max in seconds" true
    (abs_float (Obs.Hist.max_value s -. 1023e-6) < 1e-12);
  check bool_t "p99 in seconds" true
    (abs_float (Obs.Hist.quantile s 0.99 -. 1023e-6) < 1e-12)

let test_hist_merge () =
  let a = Obs.Hist.make ~registry:hist_reg "merge.a" in
  let b = Obs.Hist.make ~registry:hist_reg "merge.b" in
  Obs.Hist.record a 1;
  Obs.Hist.record b 1;
  Obs.Hist.record b 100;
  let sa = Obs.Hist.read_cells "a" a and sb = Obs.Hist.read_cells "b" b in
  let m = Obs.Hist.merge sa sb in
  check int_t "merged count" 3 (Obs.Hist.count m);
  check bool_t "merged max" true (Obs.Hist.max_value m = 127.0);
  (* Scale mismatch must refuse to merge, not silently mix units. *)
  let c = Obs.Hist.make ~registry:hist_reg ~scale:1e-6 "merge.c" in
  match Obs.Hist.merge sa (Obs.Hist.read_cells "c" c) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "merged histograms of different scales"

let test_hist_registry_integration () =
  let reg = Obs.Registry.create "hist-reg" in
  let h = Obs.Hist.make ~registry:reg "h" in
  let h' = Obs.Hist.make ~registry:reg "h" in
  Obs.Hist.record h 5;
  Obs.Hist.record h' 5;
  check int_t "same cell through both handles" 2
    (Obs.Hist.count (find_hist ~registry:reg "h"));
  (* Histograms stay out of the scalar snapshot. *)
  check int_t "not in scalar snapshot" 0
    (List.length (Obs.snapshot ~registry:reg ()));
  (* A name cannot be both a counter and a histogram. *)
  let _c = Obs.Counter.make ~registry:reg "taken" in
  (match Obs.Hist.make ~registry:reg "taken" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "counter name reused as histogram");
  Obs.reset_metrics ~registry:reg ();
  check int_t "reset zeroes buckets" 0
    (Obs.Hist.count (find_hist ~registry:reg "h"))

let test_hist_json_round_trip () =
  let h = Obs.Hist.make ~registry:hist_reg "jsonrt" in
  List.iter (Obs.Hist.record h) [ -3; 0; 1; 1; 3; 900; 900; 900; 123456 ];
  let s = Obs.Hist.read_cells "jsonrt" h in
  let back = Obs.Hist.of_json ~name:"jsonrt" (Obs.Json.parse (Obs.Hist.json s)) in
  check bool_t "name" true (back.Obs.Hist.hname = "jsonrt");
  check bool_t "scale" true (back.Obs.Hist.hscale = s.Obs.Hist.hscale);
  check bool_t "buckets" true (back.Obs.Hist.hbuckets = s.Obs.Hist.hbuckets);
  (* Scaled histograms round-trip their scale too. *)
  let t = Obs.Hist.make ~registry:hist_reg ~scale:1e-6 "jsonrt.t" in
  Obs.Hist.record_time t 0.5;
  let st = Obs.Hist.read_cells "jsonrt.t" t in
  let backt =
    Obs.Hist.of_json ~name:"jsonrt.t" (Obs.Json.parse (Obs.Hist.json st))
  in
  check bool_t "scaled buckets" true
    (backt.Obs.Hist.hbuckets = st.Obs.Hist.hbuckets
     && backt.Obs.Hist.hscale = 1e-6)

(* The striping law: a histogram fed the same multiset of samples from
   several domains reads back identical to one fed sequentially. *)
let hist_law_id = ref 0

let striped_hist_prop values =
  incr hist_law_id;
  let name tag = Printf.sprintf "law.%d.%s" !hist_law_id tag in
  let seq = Obs.Hist.make ~registry:hist_reg (name "seq") in
  let par = Obs.Hist.make ~registry:hist_reg (name "par") in
  List.iter (Obs.Hist.record seq) values;
  let chunks = Array.make 4 [] in
  List.iteri (fun i v -> chunks.(i mod 4) <- v :: chunks.(i mod 4)) values;
  Array.to_list chunks
  |> List.map (fun chunk ->
         Domain.spawn (fun () -> List.iter (Obs.Hist.record par) chunk))
  |> List.iter Domain.join;
  let a = Obs.Hist.read_cells "seq" seq in
  let b = Obs.Hist.read_cells "par" par in
  if a.Obs.Hist.hbuckets <> b.Obs.Hist.hbuckets then
    QCheck2.Test.fail_reportf "striped read diverged for %d samples"
      (List.length values);
  true

(* ------------------------------------------------------------------ *)
(* Span profiles and flame output                                      *)
(* ------------------------------------------------------------------ *)

let span_begin ?(dom = 0) name =
  { Obs.ts = 0.0; name = "span.begin:" ^ name;
    fields = [ "depth", Obs.Int 0; "domain", Obs.Int dom ] }

let span_end ?(dom = 0) name dur =
  { Obs.ts = 0.0; name = "span.end:" ^ name;
    fields =
      [ "depth", Obs.Int 0; "domain", Obs.Int dom; "dur_s", Obs.Float dur ] }

let profile_of events =
  let p = Obs.Profile.create () in
  List.iter (Obs.Profile.add_event p) events;
  p

let test_profile_tree () =
  (* Domain 1 runs a(b, b); domain 2's c interleaves arbitrarily. *)
  let p =
    profile_of
      [
        span_begin ~dom:1 "a";
        span_begin ~dom:1 "b";
        span_begin ~dom:2 "c";
        span_end ~dom:1 "b" 1.0;
        span_begin ~dom:1 "b";
        span_end ~dom:2 "c" 5.0;
        span_end ~dom:1 "b" 2.0;
        span_end ~dom:1 "a" 4.0;
      ]
  in
  check int_t "nothing unmatched" 0 (Obs.Profile.unmatched p);
  match Obs.Profile.roots p with
  | [ c; a ] ->
    (* Sorted by total time: c (5s) before a (4s). *)
    check bool_t "c first" true (c.Obs.Profile.tname = "c");
    check bool_t "c leaf self" true (c.Obs.Profile.self_s = 5.0);
    check bool_t "a name" true (a.Obs.Profile.tname = "a");
    check int_t "a calls" 1 a.Obs.Profile.calls;
    check bool_t "a total" true (a.Obs.Profile.total_s = 4.0);
    check bool_t "a self = total - children" true (a.Obs.Profile.self_s = 1.0);
    (match a.Obs.Profile.children with
     | [ b ] ->
       check int_t "b merged calls" 2 b.Obs.Profile.calls;
       check bool_t "b total" true (b.Obs.Profile.total_s = 3.0)
     | _ -> Alcotest.fail "a must have one merged child")
  | other -> Alcotest.failf "expected 2 roots, got %d" (List.length other)

let test_profile_unmatched_resync () =
  (* A truncated trace: b's end is missing, a's end still matches after
     popping (and counting) the stale frame. *)
  let p =
    profile_of [ span_begin "a"; span_begin "b"; span_end "a" 3.0 ]
  in
  check int_t "one unmatched frame" 1 (Obs.Profile.unmatched p);
  (match Obs.Profile.roots p with
   | [ a ] ->
     check bool_t "a survived resync" true
       (a.Obs.Profile.tname = "a" && a.Obs.Profile.total_s = 3.0)
   | _ -> Alcotest.fail "expected one root");
  (* An end with no begin at all is dropped and counted. *)
  let q = profile_of [ span_end "ghost" 1.0 ] in
  check int_t "ghost end unmatched" 1 (Obs.Profile.unmatched q);
  check int_t "no roots" 0 (List.length (Obs.Profile.roots q))

(* Synthetic span forests for the flame-sum law. *)
type stree = { sname : string; self : float; kids : stree list }

let rec dur_of t =
  t.self +. List.fold_left (fun acc k -> acc +. dur_of k) 0.0 t.kids

let rec events_of t =
  (span_begin t.sname :: List.concat_map events_of t.kids)
  @ [ span_end t.sname (dur_of t) ]

let gen_stree =
  let open QCheck2.Gen in
  let rec tree depth =
    let* sname = oneofl [ "a"; "b"; "c"; "d" ] in
    let* self = float_range 0.001 0.5 in
    let* kids =
      if depth = 0 then pure []
      else list_size (int_range 0 3) (tree (depth - 1))
    in
    pure { sname; self; kids }
  in
  list_size (int_range 1 4) (tree 2)

(* The flame contract the offline analyzer relies on: folded-stack self
   times under each root sum back to that root's recorded duration. *)
let flame_sums_prop forest =
  let p = profile_of (List.concat_map events_of forest) in
  let expected = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let cur =
        Option.value ~default:0.0 (Hashtbl.find_opt expected t.sname)
      in
      Hashtbl.replace expected t.sname (cur +. dur_of t))
    forest;
  let flame_by_root = Hashtbl.create 8 in
  List.iter
    (fun (stack, self) ->
      let root =
        match String.index_opt stack ';' with
        | Some i -> String.sub stack 0 i
        | None -> stack
      in
      let cur =
        Option.value ~default:0.0 (Hashtbl.find_opt flame_by_root root)
      in
      Hashtbl.replace flame_by_root root (cur +. self))
    (Obs.Profile.flame p);
  Hashtbl.iter
    (fun root want ->
      let got = Option.value ~default:0.0 (Hashtbl.find_opt flame_by_root root) in
      if abs_float (got -. want) > 0.01 *. want then
        QCheck2.Test.fail_reportf
          "root %s: flame self times sum to %.6f, root durations total %.6f"
          root got want)
    expected;
  (* Totals agree too, and every root appears. *)
  let roots = Obs.Profile.roots p in
  if List.length roots <> Hashtbl.length expected then
    QCheck2.Test.fail_reportf "expected %d distinct roots, profile has %d"
      (Hashtbl.length expected) (List.length roots);
  true

(* ------------------------------------------------------------------ *)
(* Deep telemetry: solver histograms and pool queue wait               *)
(* ------------------------------------------------------------------ *)

let solve_random_instance seed =
  let rng = Random.State.make [| seed |] in
  let f =
    Fl_sat.Random_sat.fixed_length rng ~num_vars:60 ~num_clauses:258 ~k:3
  in
  let s = Cdcl.of_formula f in
  ignore (Cdcl.solve s);
  Cdcl.stats s

let test_deep_cdcl_histograms () =
  Obs.reset_metrics ();
  check bool_t "deep off by default" false (Obs.deep_enabled ());
  let stats = solve_random_instance 11 in
  check bool_t "instance produced conflicts" true (stats.Cdcl.conflicts > 0);
  check int_t "lbd empty with deep off" 0
    (Obs.Hist.count (find_hist "cdcl.lbd"));
  Obs.set_deep true;
  let stats =
    Fun.protect ~finally:(fun () -> Obs.set_deep false) (fun () ->
        solve_random_instance 12)
  in
  let count name = Obs.Hist.count (find_hist name) in
  (* One LBD / length / level sample per learnt clause. *)
  check bool_t "lbd samples" true (count "cdcl.lbd" > 0);
  check bool_t "learnt_len samples" true (count "cdcl.learnt_len" > 0);
  check bool_t "conflict_level samples" true
    (count "cdcl.conflict_level" > 0);
  check bool_t "props_per_decision samples" true
    (count "cdcl.props_per_decision" > 0);
  check bool_t "lbd count tracks conflicts" true
    (count "cdcl.lbd" <= stats.Cdcl.conflicts);
  (* LBD of a learnt clause never exceeds its length; the histogram can
     only agree in aggregate, so compare upper estimates. *)
  let lbd = find_hist "cdcl.lbd" and len = find_hist "cdcl.learnt_len" in
  check bool_t "lbd p50 <= learnt_len max" true
    (Obs.Hist.quantile lbd 0.5 <= Obs.Hist.max_value len)

let test_deep_queue_wait_histogram () =
  Obs.reset_metrics ();
  Obs.set_deep true;
  Fun.protect ~finally:(fun () -> Obs.set_deep false) (fun () ->
      Fl_par.with_pool ~name:"obs-test" ~jobs:2 (fun pool ->
          let outcomes =
            Fl_par.run pool (Array.init 8 (fun i () -> i * i))
          in
          Array.iteri
            (fun i o ->
              match Fl_par.value o with
              | Some v -> check int_t "task result" (i * i) v
              | None -> Alcotest.fail "task failed")
            outcomes));
  check int_t "one wait sample per task" 8
    (Obs.Hist.count (find_hist "par.queue_wait_s"))

(* ------------------------------------------------------------------ *)
(* Baseline regression gate                                            *)
(* ------------------------------------------------------------------ *)

let write_tmp_json contents =
  let path = Filename.temp_file "fl_gate" ".json" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let base_report ?(geomean = 0.85) ?(reduction = 43.0) ?(statuses = true)
    ?(status_a = "broken") ?(wall = 10.0) () =
  Printf.sprintf
    {|{"experiment": "cnf", "wall_seconds": %g, "statuses_match": %b,
       "solve_ratio_geomean": %g, "max_clause_reduction_pct": %g,
       "status_pre": {"a": %S, "b": "timeout"},
       "solve_ratio": {"a": 1.0, "b": 0.9},
       "counters": {"cdcl.conflicts": 123}}|}
    wall statuses geomean reduction status_a

let run_gate baseline current =
  let b = write_tmp_json baseline and c = write_tmp_json current in
  let r = Fl_cli.Baseline.gate ~baseline:b ~current:c () in
  Sys.remove b;
  Sys.remove c;
  r

let test_gate_pass () =
  (match run_gate (base_report ()) (base_report ()) with
   | Ok () -> ()
   | Error fails ->
     Alcotest.failf "identical reports failed: %s" (String.concat "; " fails));
  (* Informational drift (wall time) and tolerated watched drift pass. *)
  match
    run_gate (base_report ())
      (base_report ~wall:99.0 ~geomean:0.9 ~reduction:40.0 ())
  with
  | Ok () -> ()
  | Error fails ->
    Alcotest.failf "tolerated drift failed: %s" (String.concat "; " fails)

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let expect_failure name result pattern =
  match result with
  | Ok () -> Alcotest.failf "%s: gate passed" name
  | Error fails ->
    if not (List.exists (fun f -> contains_substring f pattern) fails) then
      Alcotest.failf "%s: no failure mentions %S in %s" name pattern
        (String.concat "; " fails)

let test_gate_failures () =
  expect_failure "status flip"
    (run_gate (base_report ()) (base_report ~status_a:"timeout" ()))
    "status flipped";
  expect_failure "bool flip"
    (run_gate (base_report ()) (base_report ~statuses:false ()))
    "flipped true -> false";
  expect_failure "watched lower regressed"
    (run_gate (base_report ()) (base_report ~geomean:1.2 ()))
    "solve_ratio_geomean";
  expect_failure "watched higher regressed"
    (run_gate (base_report ()) (base_report ~reduction:20.0 ()))
    "max_clause_reduction_pct"

(* ------------------------------------------------------------------ *)
(* CDCL progress hook                                                  *)
(* ------------------------------------------------------------------ *)

let test_cdcl_progress_hook () =
  let rng = Random.State.make [| 11 |] in
  let f = Fl_sat.Random_sat.fixed_length rng ~num_vars:60 ~num_clauses:258 ~k:3 in
  let s = Cdcl.of_formula f in
  let deltas = ref [] in
  Cdcl.set_progress s ~every:16 (fun d -> deltas := d :: !deltas);
  ignore (Cdcl.solve s);
  let total = Cdcl.stats s in
  check bool_t "instance was non-trivial" true (total.Cdcl.conflicts >= 16);
  check bool_t "hook fired" true (!deltas <> []);
  let sum =
    List.fold_left Cdcl.add_stats Cdcl.zero_stats !deltas
  in
  check bool_t "delta conflicts never exceed total" true
    (sum.Cdcl.conflicts <= total.Cdcl.conflicts);
  List.iter
    (fun d ->
      check bool_t "each delta covers >= every conflicts" true
        (d.Cdcl.conflicts >= 16))
    !deltas

(* ------------------------------------------------------------------ *)
(* Attack records: deltas sum to Session.solver_stats                  *)
(* ------------------------------------------------------------------ *)

let is_record e =
  match e.Obs.name with
  | "attack.iteration" | "attack.exhausted" | "attack.timeout" -> true
  | _ -> false

let sum_records events =
  List.fold_left
    (fun acc e ->
      if is_record e then
        Cdcl.add_stats acc
          {
            Cdcl.decisions = field_int "decisions" e;
            propagations = field_int "propagations" e;
            conflicts = field_int "conflicts" e;
            restarts = field_int "restarts" e;
            learned_clauses = field_int "learned_clauses" e;
            learned_literals = field_int "learned_literals" e;
            reductions = field_int "reductions" e;
            max_decision_level = field_int "max_decision_level" e;
          }
      else acc)
    Cdcl.zero_stats events

let attack_deltas_sum_prop ?inprocess ?inprocess_every
    ?inprocess_min_conflicts seed =
  let c =
    Generator.random ~seed:(200 + seed) ~name:"obs-host"
      { Generator.num_inputs = 5 + (seed mod 4);
        num_outputs = 2 + (seed mod 3);
        num_gates = 30 + (5 * (seed mod 8));
        max_fanin = 3; and_bias = 0.8 }
  in
  let rng = Random.State.make [| seed; 0x0b5 |] in
  let locked = Fl_locking.Rll.lock rng ~key_bits:(4 + (seed mod 5)) c in
  let result, events =
    record (fun () ->
        Sat_attack.run ?inprocess ?inprocess_every ?inprocess_min_conflicts
          ~timeout:30.0 locked)
  in
  let iter_records =
    List.filter (fun e -> e.Obs.name = "attack.iteration") events
  in
  (* One attack.iteration record per DIP, in order, 1-based. *)
  let indices = List.map (field_int "iter") iter_records in
  let expected_indices =
    List.init result.Sat_attack.iterations (fun i -> i + 1)
  in
  if indices <> expected_indices then
    QCheck2.Test.fail_reportf "iteration indices %s, expected 1..%d"
      (String.concat "," (List.map string_of_int indices))
      result.Sat_attack.iterations;
  (* The record deltas must reproduce the accumulated session stats. *)
  let sum = sum_records events in
  let total = result.Sat_attack.solver in
  if sum <> total then
    QCheck2.Test.fail_reportf
      "record deltas do not sum to solver stats:@.  sum   %a@.  total %a"
      Cdcl.pp_stats sum Cdcl.pp_stats total;
  true

let () =
  Alcotest.run "fl_obs"
    [
      ( "sinks",
        [
          Alcotest.test_case "null sink default" `Quick test_null_sink_is_default;
          Alcotest.test_case "fan-out to all sinks" `Quick
            test_emit_reaches_all_sinks;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "file round-trip" `Quick
            test_jsonl_file_round_trip;
          Alcotest.test_case "rejects garbage" `Quick
            test_jsonl_rejects_garbage;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and timing" `Quick
            test_span_nesting_and_timing;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safe;
          Alcotest.test_case "no-sink transparency" `Quick
            test_span_without_sink_is_transparent;
        ] );
      ( "json-generic",
        [
          Alcotest.test_case "nested parse" `Quick test_json_parse_nested;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "of_string rejects nested" `Quick
            test_of_string_rejects_nested;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_hist_buckets;
          Alcotest.test_case "count/sum/quantile" `Quick test_hist_stats;
          Alcotest.test_case "scaled time" `Quick test_hist_scaled_time;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "registry integration" `Quick
            test_hist_registry_integration;
          Alcotest.test_case "json round-trip" `Quick
            test_hist_json_round_trip;
          qcheck_case "striped recording equals sequential"
            QCheck2.Gen.(list_size (int_range 0 200) (int_range (-5) 100_000))
            striped_hist_prop;
        ] );
      ( "profile",
        [
          Alcotest.test_case "calling-context tree" `Quick test_profile_tree;
          Alcotest.test_case "unmatched resync" `Quick
            test_profile_unmatched_resync;
          qcheck_case ~count:60 "flame self times sum to root durations"
            gen_stree flame_sums_prop;
        ] );
      ( "deep",
        [
          Alcotest.test_case "cdcl histograms" `Quick
            test_deep_cdcl_histograms;
          Alcotest.test_case "pool queue wait" `Quick
            test_deep_queue_wait_histogram;
        ] );
      ( "baseline-gate",
        [
          Alcotest.test_case "pass" `Quick test_gate_pass;
          Alcotest.test_case "failures" `Quick test_gate_failures;
        ] );
      ( "solver",
        [
          Alcotest.test_case "cdcl progress hook" `Quick
            test_cdcl_progress_hook;
        ] );
      ( "attack-records",
        [
          qcheck_case "per-iteration deltas sum to Session.solver_stats"
            QCheck2.Gen.(int_range 0 1000)
            (fun seed -> attack_deltas_sum_prop seed);
          (* Periodic inprocessing rebuilds the miter solver mid-attack;
             the before/after accumulation must keep the invariant. *)
          qcheck_case ~count:10
            "deltas sum across inprocessing solver rebuilds"
            QCheck2.Gen.(int_range 0 1000)
            (attack_deltas_sum_prop ~inprocess:true ~inprocess_every:2
               ~inprocess_min_conflicts:0);
        ] );
    ]
