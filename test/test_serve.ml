(* In-process integration tests for the Fl_serve daemon: the wire
   protocol codec, the content-addressed cache (second identical attack
   must skip parse + Tseytin + preprocessing), the streamed-telemetry
   delta-sum invariant held over the socket, concurrent clients on a
   shared pool, and clean shutdown. *)

module Circuit = Fl_netlist.Circuit
module Bench_io = Fl_netlist.Bench_io
module Generator = Fl_netlist.Generator
module Cdcl = Fl_sat.Cdcl
module Obs = Fl_obs
module Json = Fl_obs.Json
module Protocol = Fl_serve.Protocol
module Server = Fl_serve.Server
module Client = Fl_serve.Client

let check = Alcotest.check
let bool_t = Alcotest.bool
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let host seed =
  Generator.random ~seed ~name:(Printf.sprintf "serve-host%d" seed)
    {
      Generator.num_inputs = 6;
      num_outputs = 3;
      num_gates = 40;
      max_fanin = 3;
      and_bias = 0.8;
    }

let bundle seed =
  let c = host seed in
  Fl_locking.Rll.lock (Random.State.make [| seed; 0x5e7 |]) ~key_bits:8 c

let texts seed =
  let b = bundle seed in
  ( Bench_io.to_string b.Fl_locking.Locked.locked,
    Bench_io.to_string b.Fl_locking.Locked.oracle )

let with_server ?(jobs = 1) f =
  let socket = Filename.temp_file "flserve" ".sock" in
  Sys.remove socket;
  let t = Server.start { (Server.default_config ~socket) with Server.jobs } in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t)
    (fun () -> f socket)

let attack_req ~id ~locked ~oracle =
  {
    Protocol.default_request with
    Protocol.id;
    op = "attack";
    locked = Some locked;
    oracle = Some oracle;
    timeout = Some 60.0;
  }

let jstr k j =
  match Json.member k j with
  | Some (Json.Jstring s) -> s
  | _ -> Alcotest.failf "result member %S missing or not a string" k

let jint k j =
  match Json.member k j with
  | Some (Json.Jint i) -> i
  | _ -> Alcotest.failf "result member %S missing or not an int" k

let jbool k j =
  match Json.member k j with
  | Some (Json.Jbool b) -> b
  | _ -> Alcotest.failf "result member %S missing or not a bool" k

let ok = function
  | Result.Ok j -> j
  | Result.Error msg -> Alcotest.failf "request failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Delta-sum invariant, held over the socket                           *)
(* ------------------------------------------------------------------ *)

let field_int name e =
  match List.assoc_opt name e.Obs.fields with
  | Some (Obs.Int i) -> i
  | Some (Obs.Float f) -> int_of_float f
  | _ -> 0

let sum_records events =
  List.fold_left
    (fun acc e ->
      match e.Obs.name with
      | "attack.iteration" | "attack.exhausted" | "attack.timeout" ->
        Cdcl.add_stats acc
          {
            Cdcl.decisions = field_int "decisions" e;
            propagations = field_int "propagations" e;
            conflicts = field_int "conflicts" e;
            restarts = field_int "restarts" e;
            learned_clauses = field_int "learned_clauses" e;
            learned_literals = field_int "learned_literals" e;
            reductions = field_int "reductions" e;
            max_decision_level = field_int "max_decision_level" e;
          }
      | _ -> acc)
    Cdcl.zero_stats events

let test_attack_streams_and_delta_sum () =
  with_server (fun socket ->
      let locked, oracle = texts 1 in
      let c = Client.connect socket in
      let events = ref [] in
      let r =
        ok
          (Client.request
             ~on_event:(fun e -> events := e :: !events)
             c
             (attack_req ~id:"a1" ~locked ~oracle))
      in
      Client.close c;
      check string_t "status" "broken" (jstr "status" r);
      check bool_t "key verified against oracle" true
        (jbool "key_is_correct" r);
      check string_t "first request misses" "miss" (jstr "cache" r);
      let events = List.rev !events in
      check bool_t "iteration telemetry streamed" true
        (List.exists (fun e -> e.Obs.name = "attack.iteration") events)
        ;
      (* The per-record solver-stat deltas forwarded over the socket must
         reproduce the result frame's totals exactly — the same invariant
         test_obs checks in-process. *)
      let sum = sum_records events in
      let total =
        {
          Cdcl.decisions = jint "decisions" r;
          propagations = jint "propagations" r;
          conflicts = jint "conflicts" r;
          restarts = jint "restarts" r;
          learned_clauses = jint "learned_clauses" r;
          learned_literals = jint "learned_literals" r;
          reductions = jint "reductions" r;
          max_decision_level = jint "max_decision_level" r;
        }
      in
      if sum <> total then
        Alcotest.failf "socket deltas do not sum to result totals:@.%a@.%a"
          Cdcl.pp_stats sum Cdcl.pp_stats total)

(* ------------------------------------------------------------------ *)
(* Content-addressed cache                                             *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_on_identical_and_commented () =
  with_server (fun socket ->
      let locked, oracle = texts 2 in
      let c = Client.connect socket in
      let r1 = ok (Client.request c (attack_req ~id:"c1" ~locked ~oracle)) in
      check string_t "cold" "miss" (jstr "cache" r1);
      let r2 = ok (Client.request c (attack_req ~id:"c2" ~locked ~oracle)) in
      check string_t "identical text hits" "hit" (jstr "cache" r2);
      check string_t "same key" (jstr "key" r1) (jstr "key" r2);
      (* A comment-prepended variant has different text (circuit-cache
         miss) but the same structure — the prepared-base cache is keyed
         by structural hash, so it must still hit. *)
      let commented = "# same circuit, different bytes\n" ^ locked in
      let r3 =
        ok (Client.request c (attack_req ~id:"c3" ~locked:commented ~oracle))
      in
      check string_t "content-addressed hit" "hit" (jstr "cache" r3);
      check string_t "same key again" (jstr "key" r1) (jstr "key" r3);
      let s =
        ok
          (Client.request c
             { Protocol.default_request with Protocol.id = "s"; op = "status" })
      in
      check bool_t "status counts base hits" true (jint "cache.hit" s >= 2);
      check bool_t "one prepared base" true (jint "cache.bases" s = 1);
      check bool_t "no collisions" true (jint "cache.collisions" s = 0);
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Concurrent clients on a shared pool                                 *)
(* ------------------------------------------------------------------ *)

let test_concurrent_clients () =
  with_server ~jobs:2 (fun socket ->
      let run seed out =
        let locked, oracle = texts seed in
        let c = Client.connect socket in
        let events = ref 0 in
        let r =
          Client.request
            ~on_event:(fun e ->
              if e.Obs.name = "attack.iteration" then incr events)
            c
            (attack_req ~id:(Printf.sprintf "p%d" seed) ~locked ~oracle)
        in
        Client.close c;
        out := Some (r, !events)
      in
      let o1 = ref None and o2 = ref None in
      let t1 = Thread.create (fun () -> run 31 o1) () in
      let t2 = Thread.create (fun () -> run 32 o2) () in
      Thread.join t1;
      Thread.join t2;
      List.iter
        (fun out ->
          match !out with
          | None -> Alcotest.fail "client did not finish"
          | Some (r, events) ->
            let r = ok r in
            check string_t "status" "broken" (jstr "status" r);
            check bool_t "key verified" true (jbool "key_is_correct" r);
            (* Per-request scoped sinks: each client sees only its own
               stream, and every stream is complete. *)
            check bool_t "own telemetry complete" true
              (events = jint "iterations" r))
        [ o1; o2 ])

(* ------------------------------------------------------------------ *)
(* Errors and shutdown                                                 *)
(* ------------------------------------------------------------------ *)

let test_bad_requests_get_error_frames () =
  with_server (fun socket ->
      let c = Client.connect socket in
      (match
         Client.request c
           { Protocol.default_request with Protocol.id = "e1"; op = "attack" }
       with
       | Result.Ok _ -> Alcotest.fail "attack without circuits must fail"
       | Result.Error msg ->
         let contains needle hay =
           let nh = String.length hay and nn = String.length needle in
           let rec go i =
             i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
           in
           go 0
         in
         check bool_t "names the member" true (contains "locked" msg));
      (* The connection survives an error frame. *)
      let s =
        ok
          (Client.request c
             { Protocol.default_request with Protocol.id = "e2"; op = "status" })
      in
      check bool_t "error counted" true (jint "errors" s >= 1);
      Client.close c)

let test_shutdown_is_clean () =
  let socket = Filename.temp_file "flserve" ".sock" in
  Sys.remove socket;
  let t = Server.start (Server.default_config ~socket) in
  let c = Client.connect socket in
  let r =
    ok
      (Client.request c
         { Protocol.default_request with Protocol.id = "z"; op = "shutdown" })
  in
  check bool_t "acknowledged" true (jbool "stopping" r);
  Client.close c;
  (* wait must return (joining listener, scheduler and readers) and
     remove the socket file. *)
  Server.wait t;
  check bool_t "socket removed" false (Sys.file_exists socket)

let () =
  Alcotest.run "fl_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "delta sum over socket" `Quick
            test_attack_streams_and_delta_sum;
        ] );
      ( "cache",
        [
          Alcotest.test_case "content-addressed hits" `Quick
            test_cache_hit_on_identical_and_commented;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "two clients, shared pool" `Quick
            test_concurrent_clients;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "error frames" `Quick
            test_bad_requests_get_error_frames;
          Alcotest.test_case "clean shutdown" `Quick test_shutdown_is_clean;
        ] );
    ]
