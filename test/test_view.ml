(* Tests for Fl_netlist.View: the compiled evaluator must be observationally
   identical to the interpretive reference simulators, on acyclic and cyclic
   circuits alike, and the per-circuit memoization must hold. *)

module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Sim_word = Fl_netlist.Sim_word
module View = Fl_netlist.View
module Generator = Fl_netlist.Generator
module Bench_suite = Fl_netlist.Bench_suite

let check = Alcotest.check
let bool_t = Alcotest.bool

let qcheck_case ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Circuit generators                                                  *)
(* ------------------------------------------------------------------ *)

let acyclic_of ~seed =
  let profile =
    {
      Generator.num_inputs = 3 + (seed mod 6);
      num_outputs = 1 + (seed mod 3);
      num_gates = 15 + (seed mod 60);
      max_fanin = 2 + (seed mod 3);
      and_bias = 0.7;
    }
  in
  Generator.random ~seed ~name:"view-prop" profile

(* A random circuit whose declared gates pick fanins from the whole id
   space, so combinational cycles (and self-loops) appear freely.  Exercises
   every gate kind the compiled evaluator handles, including LUTs and
   constants. *)
let random_cyclic ~seed =
  let rng = Random.State.make [| seed; 0xc1c |] in
  let b = Circuit.Builder.create ~name:(Printf.sprintf "cyc%d" seed) () in
  let num_inputs = 2 + Random.State.int rng 3 in
  let num_keys = 1 + Random.State.int rng 2 in
  let num_gates = 8 + Random.State.int rng 25 in
  let ids = ref [] in
  for _ = 1 to num_inputs do
    ids := Circuit.Builder.input b :: !ids
  done;
  for _ = 1 to num_keys do
    ids := Circuit.Builder.key_input b :: !ids
  done;
  ids := Circuit.Builder.add b (Gate.Const (Random.State.bool rng)) [||] :: !ids;
  let declared = ref [] in
  for _ = 1 to num_gates do
    let kind =
      match Random.State.int rng 12 with
      | 0 -> Gate.Buf
      | 1 -> Gate.Not
      | 2 -> Gate.And
      | 3 -> Gate.Nand
      | 4 -> Gate.Or
      | 5 -> Gate.Nor
      | 6 -> Gate.Xor
      | 7 -> Gate.Xnor
      | 8 | 9 -> Gate.Mux
      | _ ->
        let k = 1 + Random.State.int rng 3 in
        Gate.Lut (Array.init (1 lsl k) (fun _ -> Random.State.bool rng))
    in
    let id = Circuit.Builder.declare b kind in
    declared := (id, kind) :: !declared;
    ids := id :: !ids
  done;
  let all = Array.of_list !ids in
  let pick () = all.(Random.State.int rng (Array.length all)) in
  List.iter
    (fun (id, kind) ->
      let arity =
        match kind with
        | Gate.Buf | Gate.Not -> 1
        | Gate.Mux -> 3
        | Gate.Lut tt ->
          let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
          log2 (Array.length tt)
        | _ -> 2 + Random.State.int rng 2
      in
      Circuit.Builder.set_fanins b id (Array.init arity (fun _ -> pick ())))
    !declared;
  let gate_ids = Array.of_list (List.map fst !declared) in
  let num_outputs = 1 + Random.State.int rng 3 in
  for i = 0 to num_outputs - 1 do
    Circuit.Builder.output b
      (Printf.sprintf "y%d" i)
      gate_ids.(Random.State.int rng (Array.length gate_ids))
  done;
  Circuit.of_builder b

let random_stim rng c =
  ( Sim.random_vector rng (Circuit.num_inputs c),
    Sim.random_vector rng (Circuit.num_keys c) )

(* ------------------------------------------------------------------ *)
(* Compiled evaluator = reference simulator                            *)
(* ------------------------------------------------------------------ *)

let prop_acyclic_matches_reference =
  let gen = QCheck2.Gen.(pair (int_bound 10_000) (int_bound 10_000)) in
  qcheck_case "acyclic: view = reference" gen (fun (seed, stim_seed) ->
      let c = acyclic_of ~seed in
      let rng = Random.State.make [| stim_seed |] in
      let inputs, keys = random_stim rng c in
      Sim.eval c ~inputs ~keys = Sim.eval_reference c ~inputs ~keys
      && Sim.eval_tristate c ~inputs ~keys
         = Sim.eval_tristate_reference c ~inputs ~keys)

let prop_cyclic_matches_reference =
  let gen = QCheck2.Gen.(pair (int_bound 10_000) (int_bound 10_000)) in
  qcheck_case "cyclic: view fixpoint = reference fixpoint" gen
    (fun (seed, stim_seed) ->
      let c = random_cyclic ~seed in
      let rng = Random.State.make [| stim_seed |] in
      let inputs, keys = random_stim rng c in
      let via_view = Sim.eval_tristate c ~inputs ~keys in
      let reference = Sim.eval_tristate_reference c ~inputs ~keys in
      let strict_agree =
        match Sim.eval c ~inputs ~keys with
        | outputs -> (
          match Sim.eval_reference c ~inputs ~keys with
          | ref_outputs -> outputs = ref_outputs
          | exception Sim.Unresolved _ -> false)
        | exception Sim.Unresolved _ -> (
          match Sim.eval_reference c ~inputs ~keys with
          | _ -> false
          | exception Sim.Unresolved _ -> true)
      in
      via_view = reference && strict_agree)

let prop_word_lane_zero_matches_scalar =
  (* Broadcast words through the view: lane 0 must reproduce the scalar
     tristate result, on cyclic circuits included. *)
  let gen = QCheck2.Gen.(pair (int_bound 10_000) (int_bound 10_000)) in
  qcheck_case "word lane 0 = scalar" gen (fun (seed, stim_seed) ->
      let c =
        if seed land 1 = 0 then acyclic_of ~seed else random_cyclic ~seed
      in
      let rng = Random.State.make [| stim_seed; 1 |] in
      let inputs, keys = random_stim rng c in
      let words =
        Sim_word.eval_tristate c ~inputs:(View.broadcast inputs)
          ~keys:(View.broadcast keys)
      in
      let scalar = Sim.eval_tristate_reference c ~inputs ~keys in
      Array.for_all2
        (fun w tri ->
          match tri with
          | Sim.VX -> w.Sim_word.defined land 1 = 0
          | Sim.V1 -> w.Sim_word.defined land 1 = 1 && w.Sim_word.value land 1 = 1
          | Sim.V0 -> w.Sim_word.defined land 1 = 1 && w.Sim_word.value land 1 = 0)
        words scalar)

let prop_word_lanes_match_scalar_sweep =
  (* Every lane of a packed evaluation equals the scalar reference on that
     lane's vector (acyclic circuits; strict eval). *)
  let gen = QCheck2.Gen.(pair (int_bound 10_000) (int_bound 10_000)) in
  qcheck_case ~count:25 "packed lanes = scalar sweep" gen
    (fun (seed, stim_seed) ->
      let c = acyclic_of ~seed in
      let rng = Random.State.make [| stim_seed; 2 |] in
      let inputs = Sim_word.random_words rng ~width:(Circuit.num_inputs c) in
      let keys = Sim.random_vector rng (Circuit.num_keys c) in
      let packed = Sim_word.eval c ~inputs ~keys:(View.broadcast keys) in
      let ok = ref true in
      for lane = 0 to 7 do
        let lane_inputs =
          Array.map (fun w -> w land (1 lsl lane) <> 0) inputs
        in
        let expected = Sim.eval_reference c ~inputs:lane_inputs ~keys in
        Array.iteri
          (fun i w ->
            if w land (1 lsl lane) <> 0 <> expected.(i) then ok := false)
          packed
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Fixpoint corner cases                                               *)
(* ------------------------------------------------------------------ *)

let test_oscillator_unresolved () =
  (* y = NOT y through the compiled evaluator: VX tristate, raising eval. *)
  let b = Circuit.Builder.create ~name:"view-osc" () in
  let _x = Circuit.Builder.input ~name:"x" b in
  let inv = Circuit.Builder.declare ~name:"inv" b Gate.Not in
  Circuit.Builder.set_fanins b inv [| inv |];
  Circuit.Builder.output b "y" inv;
  let c = Circuit.of_builder b in
  let v = View.of_circuit c in
  check bool_t "cyclic" false (View.is_acyclic v);
  let tri = View.eval_tristate v ~inputs:[| true |] ~keys:[||] in
  check bool_t "X output" true (tri.(0) = View.VX);
  (try
     ignore (View.eval v ~inputs:[| true |] ~keys:[||]);
     Alcotest.fail "expected Unresolved"
   with View.Unresolved _ -> ());
  (* The word evaluator reports the same lane-wise. *)
  let words = View.eval_words v ~inputs:[| -1 |] ~keys:[||] in
  check bool_t "all lanes undefined" true (words.(0).View.defined = 0)

let test_mux_cycle_opened_by_key () =
  (* m1 = MUX(k, x, m2); m2 = MUX(k, m1, x): both key values functionally
     open the structural cycle, so the view's fixpoint must settle. *)
  let b = Circuit.Builder.create ~name:"view-cyc2" () in
  let k = Circuit.Builder.key_input ~name:"k" b in
  let x = Circuit.Builder.input ~name:"x" b in
  let m1 = Circuit.Builder.declare ~name:"m1" b Gate.Mux in
  let m2 = Circuit.Builder.add ~name:"m2" b Gate.Mux [| k; m1; x |] in
  Circuit.Builder.set_fanins b m1 [| k; x; m2 |];
  Circuit.Builder.output b "y" m2;
  let c = Circuit.of_builder b in
  let v = View.of_circuit c in
  List.iter
    (fun (kv, xv) ->
      let out = View.eval v ~inputs:[| xv |] ~keys:[| kv |] in
      check bool_t (Printf.sprintf "k=%b x=%b" kv xv) xv out.(0))
    [ false, false; false, true; true, false; true, true ]

(* ------------------------------------------------------------------ *)
(* Memoization                                                         *)
(* ------------------------------------------------------------------ *)

let test_view_is_memoized () =
  let c = Bench_suite.c17 () in
  check bool_t "same view" true (View.of_circuit c == View.of_circuit c);
  (* A structurally equal but physically distinct circuit gets its own
     view. *)
  let c2 = Bench_suite.c17 () in
  check bool_t "distinct circuit, distinct view" true
    (not (View.of_circuit c == View.of_circuit c2))

let test_topological_order_is_memoized () =
  let c = Bench_suite.c17 () in
  (match Circuit.topological_order c, Circuit.topological_order c with
   | Some a, Some b -> check bool_t "same array" true (a == b)
   | _ -> Alcotest.fail "c17 must be acyclic");
  (* The uncached path allocates fresh results. *)
  match
    Circuit.compute_topological_order c, Circuit.compute_topological_order c
  with
  | Some a, Some b ->
    check bool_t "fresh arrays" true (a != b);
    check bool_t "same order" true (a = b)
  | _ -> Alcotest.fail "c17 must be acyclic"

(* The memo hit counters were dead until the attack layers were routed
   through View (cycsat's SCC check, insertion_util's cones): a fresh view
   plus two analysis calls must count exactly one miss and one hit. *)
let test_memo_counters_count () =
  let hit name = Fl_obs.Counter.value (Fl_obs.Counter.make ("view.memo." ^ name ^ ".hit")) in
  let miss name = Fl_obs.Counter.value (Fl_obs.Counter.make ("view.memo." ^ name ^ ".miss")) in
  let c = Bench_suite.c17 () in
  let v = View.of_circuit c in
  let exercise name f =
    let h0 = hit name and m0 = miss name in
    let a = f () in
    let b = f () in
    check bool_t (name ^ " memoized result") true (a == b);
    check Alcotest.int (name ^ " misses") (m0 + 1) (miss name);
    check Alcotest.int (name ^ " hits") (h0 + 1) (hit name)
  in
  exercise "scc" (fun () -> View.scc v);
  exercise "fanouts" (fun () -> View.fanouts v);
  let _, out = c.Circuit.outputs.(0) in
  exercise "coi" (fun () -> View.cone_of_influence v out)

let test_cached_analyses_agree () =
  let c = Bench_suite.load_scaled "c432" ~scale:4 in
  let v = View.of_circuit c in
  check bool_t "acyclic agrees" true (View.is_acyclic v = Circuit.is_acyclic c);
  check bool_t "depth agrees" true (View.depth v = Circuit.depth c);
  check bool_t "fanouts agree" true (View.fanouts v = Circuit.fanouts c);
  check bool_t "scc agrees" true
    (View.scc v = Circuit.strongly_connected_components c);
  check bool_t "coi agrees" true
    (let _, id = c.Circuit.outputs.(0) in
     View.cone_of_influence v id = Circuit.transitive_fanin c id)

(* ------------------------------------------------------------------ *)
(* Shared probe helper                                                 *)
(* ------------------------------------------------------------------ *)

let test_agree_on_probes () =
  let c = acyclic_of ~seed:42 in
  let v = View.of_circuit c in
  let keys = Array.make (Circuit.num_keys c) false in
  (* A circuit always agrees with itself... *)
  check bool_t "self exhaustive" true
    (View.agree_on_probes v ~keys_a:keys v ~keys_b:keys);
  check bool_t "self random" true
    (View.agree_on_probes ~exhaustive_limit:0 ~vectors:130 v ~keys_a:keys v
       ~keys_b:keys);
  (* ...and never with its complement. *)
  let b = Circuit.Builder.create ~name:"negated" () in
  let map = Circuit.copy_nodes_into b c in
  Array.iter
    (fun (port, id) ->
      let n = Circuit.Builder.add b Gate.Not [| map.(id) |] in
      Circuit.Builder.output b port n)
    c.Circuit.outputs;
  let negated = Circuit.of_builder b in
  let vn = View.of_circuit negated in
  check bool_t "complement exhaustive" false
    (View.agree_on_probes v ~keys_a:keys vn ~keys_b:keys);
  check bool_t "complement random" false
    (View.agree_on_probes ~exhaustive_limit:0 ~vectors:130 v ~keys_a:keys vn
       ~keys_b:keys)

let test_agree_on_probes_counts_unresolved () =
  (* An output stuck at X can never count as agreement, even against
     itself. *)
  let b = Circuit.Builder.create ~name:"stuck" () in
  let _x = Circuit.Builder.input ~name:"x" b in
  let inv = Circuit.Builder.declare ~name:"inv" b Gate.Not in
  Circuit.Builder.set_fanins b inv [| inv |];
  Circuit.Builder.output b "y" inv;
  let c = Circuit.of_builder b in
  let v = View.of_circuit c in
  check bool_t "unresolved disagrees" false
    (View.agree_on_probes v ~keys_a:[||] v ~keys_b:[||])

(* ------------------------------------------------------------------ *)
(* Structural hash                                                     *)
(* ------------------------------------------------------------------ *)

(* Rebuild [c] with every wire and port renamed and all non-input nodes
   declared in a random order.  Positional structure — PI / key / output
   order and fanin order — is preserved; that is exactly the isomorphism
   View.structural_hash certifies. *)
let shuffled_renamed_copy rng c =
  let n = Circuit.num_nodes c in
  let b = Circuit.Builder.create ~name:"shuffled" () in
  let map = Array.make n (-1) in
  Array.iteri
    (fun i id ->
      map.(id) <- Circuit.Builder.input ~name:(Printf.sprintf "sp%d" i) b)
    c.Circuit.inputs;
  Array.iteri
    (fun i id ->
      map.(id) <- Circuit.Builder.key_input ~name:(Printf.sprintf "sk%d" i) b)
    c.Circuit.keys;
  let rest = ref [] in
  for id = n - 1 downto 0 do
    if map.(id) < 0 then rest := id :: !rest
  done;
  let rest = Array.of_list !rest in
  for i = Array.length rest - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = rest.(i) in
    rest.(i) <- rest.(j);
    rest.(j) <- tmp
  done;
  Array.iteri
    (fun i id ->
      map.(id) <-
        Circuit.Builder.declare ~name:(Printf.sprintf "sg%d" i) b
          (Circuit.node c id).Circuit.kind)
    rest;
  Array.iter
    (fun id ->
      Circuit.Builder.set_fanins b map.(id)
        (Array.map (fun f -> map.(f)) (Circuit.node c id).Circuit.fanins))
    rest;
  Array.iteri
    (fun i (_, id) ->
      Circuit.Builder.output b (Printf.sprintf "so%d" i) map.(id))
    c.Circuit.outputs;
  Circuit.of_builder b

let prop_structural_hash_invariant =
  let gen = QCheck2.Gen.(pair (int_bound 10_000) (int_bound 10_000)) in
  qcheck_case ~count:40 "structural hash: rename/permute invariant" gen
    (fun (seed, shuffle_seed) ->
      let c =
        if seed land 1 = 0 then acyclic_of ~seed else random_cyclic ~seed
      in
      let rng = Random.State.make [| shuffle_seed; 0x5a5 |] in
      let copy = shuffled_renamed_copy rng c in
      let h = View.structural_hash (View.of_circuit c) in
      let h' = View.structural_hash (View.of_circuit copy) in
      if h <> h' then
        QCheck2.Test.fail_reportf
          "hash not invariant: %016Lx vs %016Lx (seed %d)" h h' seed;
      true)

let prop_structural_hash_sensitive =
  (* Negating every output is the smallest functional change that keeps
     all counts identical; the hash must move. *)
  let gen = QCheck2.Gen.int_bound 10_000 in
  qcheck_case ~count:40 "structural hash: negation changes it" gen
    (fun seed ->
      let c = acyclic_of ~seed in
      let b = Circuit.Builder.create ~name:"negated" () in
      let map = Circuit.copy_nodes_into b c in
      Array.iter
        (fun (port, id) ->
          let n = Circuit.Builder.add b Gate.Not [| map.(id) |] in
          Circuit.Builder.output b port n)
        c.Circuit.outputs;
      let negated = Circuit.of_builder b in
      View.structural_hash (View.of_circuit c)
      <> View.structural_hash (View.of_circuit negated))

let test_structural_hash_collision_free () =
  (* Every bundled benchmark plus a locked variant of each must hash
     distinctly — the serve cache keys prepared miters by this value. *)
  let tbl = Hashtbl.create 64 in
  let add label c =
    let h = View.structural_hash_hex (View.of_circuit c) in
    (match Hashtbl.find_opt tbl h with
     | Some other ->
       Alcotest.failf "collision: %s and %s both hash to %s" other label h
     | None -> ());
    Hashtbl.add tbl h label
  in
  add "c17" (Bench_suite.c17 ());
  List.iter
    (fun name ->
      let c = Bench_suite.load_scaled name ~scale:16 in
      add name c;
      let rng = Random.State.make [| 7; Hashtbl.hash name |] in
      let locked = Fl_locking.Rll.lock rng ~key_bits:8 c in
      add (name ^ "+rll") locked.Fl_locking.Locked.locked;
      let rng = Random.State.make [| 11; Hashtbl.hash name |] in
      let muxed = Fl_locking.Mux_lock.lock rng ~key_bits:8 c in
      add (name ^ "+mux") muxed.Fl_locking.Locked.locked)
    Bench_suite.names;
  check bool_t "hashes recorded" true (Hashtbl.length tbl > 12)

let test_structural_hash_memoized () =
  let c = Bench_suite.c17 () in
  let v = View.of_circuit c in
  let h1 = View.structural_hash v in
  let reg = Fl_obs.Registry.default in
  let before =
    match List.assoc_opt "view.memo.shash.hit" (Fl_obs.snapshot ~registry:reg ()) with
    | Some (Fl_obs.Int n) -> n
    | _ -> 0
  in
  let h2 = View.structural_hash v in
  let after =
    match List.assoc_opt "view.memo.shash.hit" (Fl_obs.snapshot ~registry:reg ()) with
    | Some (Fl_obs.Int n) -> n
    | _ -> 0
  in
  check bool_t "same hash" true (h1 = h2);
  check bool_t "second call hit the memo" true (after = before + 1)

let () =
  Alcotest.run "view"
    [
      ( "equivalence",
        [
          prop_acyclic_matches_reference;
          prop_cyclic_matches_reference;
          prop_word_lane_zero_matches_scalar;
          prop_word_lanes_match_scalar_sweep;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "oscillator" `Quick test_oscillator_unresolved;
          Alcotest.test_case "mux cycle" `Quick test_mux_cycle_opened_by_key;
        ] );
      ( "memoization",
        [
          Alcotest.test_case "view cached" `Quick test_view_is_memoized;
          Alcotest.test_case "topo cached" `Quick
            test_topological_order_is_memoized;
          Alcotest.test_case "analyses agree" `Quick test_cached_analyses_agree;
          Alcotest.test_case "memo counters" `Quick test_memo_counters_count;
        ] );
      ( "probes",
        [
          Alcotest.test_case "agree_on_probes" `Quick test_agree_on_probes;
          Alcotest.test_case "unresolved probes" `Quick
            test_agree_on_probes_counts_unresolved;
        ] );
      ( "structural hash",
        [
          prop_structural_hash_invariant;
          prop_structural_hash_sensitive;
          Alcotest.test_case "collision-free over suite" `Quick
            test_structural_hash_collision_free;
          Alcotest.test_case "memoized" `Quick test_structural_hash_memoized;
        ] );
    ]
