(* Tests for Fl_attacks: SAT attack, CycSAT, AppSAT, brute force, removal,
   SPS, affine — against every locking scheme. *)

module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Generator = Fl_netlist.Generator
module Gate = Fl_netlist.Gate
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Cln = Fl_cln.Cln
module Sat_attack = Fl_attacks.Sat_attack
module Cycsat = Fl_attacks.Cycsat
module Appsat = Fl_attacks.Appsat
module Brute_force = Fl_attacks.Brute_force
module Removal = Fl_attacks.Removal
module Sps = Fl_attacks.Sps
module Affine = Fl_attacks.Affine
module Bypass = Fl_attacks.Bypass

let check = Alcotest.check
let bool_t = Alcotest.bool

let host ?(seed = 201) ?(gates = 60) ?(inputs = 8) ?(outputs = 4) () =
  Generator.random ~seed ~name:"host"
    { Generator.num_inputs = inputs; num_outputs = outputs; num_gates = gates;
      max_fanin = 3; and_bias = 0.8 }

let broken_correct r =
  match r.Sat_attack.status with
  | Sat_attack.Broken _ -> r.Sat_attack.key_is_correct
  | _ -> false

(* ------------------------------------------------------------------ *)
(* SAT attack                                                          *)
(* ------------------------------------------------------------------ *)

let test_sat_breaks_rll () =
  let rng = Random.State.make [| 1 |] in
  let l = Fl_locking.Rll.lock rng ~key_bits:8 (host ()) in
  let r = Sat_attack.run ~timeout:30.0 l in
  check bool_t "broken correctly" true (broken_correct r);
  check bool_t "few iterations" true (r.Sat_attack.iterations <= 20)

let test_sat_breaks_mux_lock () =
  let rng = Random.State.make [| 2 |] in
  let l = Fl_locking.Mux_lock.lock rng ~key_bits:8 (host ()) in
  let r = Sat_attack.run ~timeout:30.0 l in
  check bool_t "broken correctly" true (broken_correct r)

let test_sat_breaks_lut_lock () =
  let rng = Random.State.make [| 3 |] in
  let l = Fl_locking.Lut_lock.lock rng ~gates:4 (host ()) in
  let r = Sat_attack.run ~timeout:30.0 l in
  check bool_t "broken correctly" true (broken_correct r)

let test_sat_breaks_cross_lock () =
  let rng = Random.State.make [| 4 |] in
  let l = Fl_locking.Cross_lock.lock rng ~n:4 (host ~gates:100 ()) in
  let r = Sat_attack.run ~timeout:30.0 l in
  check bool_t "broken correctly" true (broken_correct r)

let test_sarlock_needs_many_iterations () =
  (* SARLock's defining property: ~one key ruled out per DIP, so the
     iteration count approaches the key-space size; RLL needs far fewer. *)
  let rng = Random.State.make [| 5 |] in
  let c = host ~inputs:6 () in
  let sar = Fl_locking.Sarlock.lock rng ~key_bits:5 c in
  let rll = Fl_locking.Rll.lock rng ~key_bits:5 c in
  let r_sar = Sat_attack.run ~timeout:60.0 sar in
  let r_rll = Sat_attack.run ~timeout:60.0 rll in
  check bool_t "sarlock broken" true (broken_correct r_sar);
  check bool_t "rll broken" true (broken_correct r_rll);
  check bool_t
    (Printf.sprintf "sarlock iters (%d) > rll iters (%d)"
       r_sar.Sat_attack.iterations r_rll.Sat_attack.iterations)
    true
    (r_sar.Sat_attack.iterations > r_rll.Sat_attack.iterations)

let test_sat_breaks_small_cln () =
  List.iter
    (fun spec ->
      let rng = Random.State.make [| 6 |] in
      let l = Fulllock.standalone_cln_lock spec rng in
      let r = Sat_attack.run ~timeout:60.0 l in
      check bool_t "cln broken" true (broken_correct r))
    [ Cln.blocking_spec ~n:4; Cln.default_spec ~n:4 ]

let test_sat_breaks_small_fulllock () =
  let rng = Random.State.make [| 7 |] in
  let l = Fulllock.lock_one rng ~n:4 (host ~gates:80 ()) in
  let r = Sat_attack.run ~timeout:120.0 l in
  check bool_t "small full-lock broken" true (broken_correct r)

let test_sat_timeout_reported () =
  let rng = Random.State.make [| 8 |] in
  let l = Fulllock.lock_one rng ~n:8 (host ~gates:120 ~inputs:12 ()) in
  let r = Sat_attack.run ~timeout:0.05 l in
  check bool_t "timeout" true (r.Sat_attack.status = Sat_attack.Timeout)

let test_sat_iteration_limit () =
  let rng = Random.State.make [| 9 |] in
  let l = Fl_locking.Sarlock.lock rng ~key_bits:6 (host ()) in
  let r = Sat_attack.run ~timeout:60.0 ~max_iterations:3 l in
  check bool_t "limited" true
    (r.Sat_attack.status = Sat_attack.Iteration_limit
     || r.Sat_attack.status = Sat_attack.Timeout
     || broken_correct r)

let test_sat_ratio_positive () =
  let rng = Random.State.make [| 10 |] in
  let l = Fl_locking.Rll.lock rng ~key_bits:4 (host ()) in
  let r = Sat_attack.run ~timeout:30.0 l in
  check bool_t "ratio sane" true
    (r.Sat_attack.clause_var_ratio > 1.0 && r.Sat_attack.clause_var_ratio < 10.0)

(* ------------------------------------------------------------------ *)
(* CycSAT                                                              *)
(* ------------------------------------------------------------------ *)

let cyclic_fulllock ?(seed = 23) () =
  (* Search seeds until the cyclic policy actually yields a cyclic locked
     circuit (most seeds do). *)
  let c = host ~gates:100 () in
  let rec go s =
    if s > seed + 30 then failwith "no cyclic instance found"
    else begin
      let rng = Random.State.make [| s |] in
      let l = Fulllock.lock_one rng ~policy:`Cyclic ~n:4 c in
      if Circuit.is_acyclic l.Locked.locked then go (s + 1) else l
    end
  in
  go seed

let test_cycsat_breaks_cyclic_fulllock () =
  let l = cyclic_fulllock () in
  check bool_t "feedback edges > 0" true
    (Cycsat.num_feedback_edges l.Locked.locked > 0);
  let r = Cycsat.run ~timeout:120.0 l in
  check bool_t "cycsat broke it with a correct key" true (broken_correct r)

let test_cycsat_breaks_cyclic_lock () =
  (* The SRCLock-style cyclic baseline is exactly what CycSAT was published
     against. *)
  let c = host ~gates:100 () in
  let rng = Random.State.make [| 31 |] in
  let l = Fl_locking.Cyclic_lock.lock rng ~cycles:3 c in
  check bool_t "cyclic" false (Circuit.is_acyclic l.Locked.locked);
  let r = Cycsat.run ~timeout:60.0 l in
  check bool_t "broken correctly" true (broken_correct r)

let test_sat_on_sfll_needs_many_iterations () =
  (* SFLL-HD with h=0 degenerates to SARLock's point function: one key per
     DIP, so iterations approach the key-space size.  Larger h trades
     resilience for corruption (checked: fewer iterations than h=0). *)
  let rng = Random.State.make [| 32 |] in
  let c = host ~inputs:6 () in
  let l0 = Fl_locking.Sfll.lock rng ~key_bits:5 ~h:0 c in
  let r0 = Sat_attack.run ~timeout:120.0 l0 in
  check bool_t "h=0 broken" true (broken_correct r0);
  check bool_t
    (Printf.sprintf "h=0 many DIPs (%d)" r0.Sat_attack.iterations)
    true
    (r0.Sat_attack.iterations >= 8);
  let l1 = Fl_locking.Sfll.lock rng ~key_bits:5 ~h:1 c in
  let r1 = Sat_attack.run ~timeout:120.0 l1 in
  check bool_t "h=1 broken" true (broken_correct r1);
  check bool_t "h=1 needs fewer DIPs than h=0" true
    (r1.Sat_attack.iterations <= r0.Sat_attack.iterations)

let test_appsat_approximates_sfll () =
  let rng = Random.State.make [| 33 |] in
  let l = Fl_locking.Sfll.lock rng ~key_bits:8 ~h:1 (host ~inputs:10 ()) in
  let r = Appsat.run ~timeout:60.0 ~settle_every:2 ~error_threshold:0.02 l in
  match r.Appsat.key with
  | None -> Alcotest.fail "appsat found no key"
  | Some _ ->
    check bool_t
      (Printf.sprintf "low error (%.3f)" r.Appsat.estimated_error)
      true
      (r.Appsat.estimated_error <= 0.02)

let test_cycsat_on_acyclic_equals_sat () =
  let rng = Random.State.make [| 11 |] in
  let l = Fl_locking.Rll.lock rng ~key_bits:6 (host ()) in
  check bool_t "no feedback" true (Cycsat.num_feedback_edges l.Locked.locked = 0);
  let r = Cycsat.run ~timeout:30.0 l in
  check bool_t "still breaks" true (broken_correct r)

let test_nc_conditions_allow_correct_key () =
  (* The correct key must satisfy the no-cycle conditions: assert NC plus
     the correct key as units and check satisfiability. *)
  let l = cyclic_fulllock ~seed:40 () in
  let f = Fl_cnf.Formula.create () in
  let nk = Locked.num_key_bits l in
  let key_vars = Fl_cnf.Formula.fresh_vars f nk in
  Cycsat.no_cycle_condition l.Locked.locked f key_vars;
  Array.iteri
    (fun i v ->
      Fl_cnf.Formula.add_clause f [ (if l.Locked.correct_key.(i) then v else -v) ])
    key_vars;
  let outcome, _, _ = Fl_sat.Cdcl.solve_formula f in
  check bool_t "correct key satisfies NC" true (outcome = Fl_sat.Cdcl.Sat)

(* ------------------------------------------------------------------ *)
(* AppSAT                                                              *)
(* ------------------------------------------------------------------ *)

let test_appsat_approximates_sarlock () =
  (* AppSAT should settle on a low-error key for SARLock long before the
     exact attack's ~2^k iterations. *)
  let rng = Random.State.make [| 12 |] in
  let l = Fl_locking.Sarlock.lock rng ~key_bits:8 (host ~inputs:10 ()) in
  let r = Appsat.run ~timeout:60.0 ~settle_every:2 ~error_threshold:0.02 l in
  match r.Appsat.key with
  | None -> Alcotest.fail "appsat found no key"
  | Some _ ->
    check bool_t
      (Printf.sprintf "low error (%.3f)" r.Appsat.estimated_error)
      true
      (r.Appsat.estimated_error <= 0.02)

let test_appsat_exact_on_rll () =
  let rng = Random.State.make [| 13 |] in
  let l = Fl_locking.Rll.lock rng ~key_bits:6 (host ()) in
  let r = Appsat.run ~timeout:60.0 l in
  match r.Appsat.key with
  | Some key ->
    check bool_t "key works" true (Locked.key_matches l ~key)
  | None -> Alcotest.fail "appsat failed on rll"

(* ------------------------------------------------------------------ *)
(* Brute force                                                         *)
(* ------------------------------------------------------------------ *)

let test_brute_force_small () =
  let rng = Random.State.make [| 14 |] in
  let l = Fl_locking.Rll.lock rng ~key_bits:6 (host ()) in
  let r = Brute_force.run l in
  match r.Brute_force.key with
  | Some key -> check bool_t "key works" true (Locked.key_matches l ~key)
  | None -> Alcotest.fail "brute force failed"

let test_brute_force_rejects_large () =
  let rng = Random.State.make [| 15 |] in
  let l = Fulllock.lock_one rng ~n:8 (host ~gates:120 ~inputs:12 ()) in
  try
    ignore (Brute_force.run l);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_brute_force_agrees_with_sat () =
  let rng = Random.State.make [| 16 |] in
  let l = Fl_locking.Mux_lock.lock rng ~key_bits:5 (host ()) in
  let bf = Brute_force.run l in
  let sa = Sat_attack.run ~timeout:30.0 l in
  check bool_t "both found keys" true (bf.Brute_force.key <> None && broken_correct sa)

(* ------------------------------------------------------------------ *)
(* Removal                                                             *)
(* ------------------------------------------------------------------ *)

let test_removal_breaks_sarlock () =
  let rng = Random.State.make [| 17 |] in
  let l = Fl_locking.Sarlock.lock rng ~key_bits:6 (host ~inputs:8 ()) in
  let r = Removal.run l in
  check bool_t "flip gate removed" true (r.Removal.removed_flip_gates >= 1);
  check bool_t "equivalent" true r.Removal.equivalent

let test_removal_breaks_antisat () =
  let rng = Random.State.make [| 18 |] in
  let l = Fl_locking.Antisat.lock rng ~key_bits:12 (host ~inputs:8 ()) in
  let r = Removal.run l in
  check bool_t "equivalent" true r.Removal.equivalent

let test_removal_fails_on_fulllock () =
  let rng = Random.State.make [| 19 |] in
  let l = Fulllock.lock_one rng ~n:4 (host ~gates:80 ()) in
  let r = Removal.run l in
  check bool_t "not equivalent" false r.Removal.equivalent

let test_removal_fails_on_crosslock_with_secret_routing () =
  (* The crossbar bypass guesses identity routing; with a random secret
     permutation this is almost surely wrong. *)
  let rng = Random.State.make [| 20 |] in
  let l = Fl_locking.Cross_lock.lock rng ~n:8 (host ~gates:120 ()) in
  let r = Removal.run l in
  check bool_t "bypassed muxes" true (r.Removal.bypassed_mux_islands > 0);
  check bool_t "not equivalent" false r.Removal.equivalent

(* ------------------------------------------------------------------ *)
(* Bypass                                                              *)
(* ------------------------------------------------------------------ *)

let test_bypass_breaks_sarlock () =
  (* One wrong key disagrees on exactly one input pattern: the bypass is a
     single comparator. *)
  let rng = Random.State.make [| 41 |] in
  let l = Fl_locking.Sarlock.lock rng ~key_bits:6 (host ~inputs:8 ()) in
  match Bypass.run l with
  | Bypass.Bypassed { cubes; repaired; _ } ->
    (* Cube generalization recovers SARLock's single comparator cube. *)
    check bool_t "single cube" true (List.length cubes = 1);
    check bool_t "repaired equals oracle" true
      (Fl_sat.Equiv.check repaired l.Locked.oracle = Fl_sat.Equiv.Equivalent)
  | Bypass.Too_many_cubes _ | Bypass.Inconclusive ->
    Alcotest.fail "bypass should break sarlock"

let test_bypass_breaks_sfll () =
  let rng = Random.State.make [| 42 |] in
  let l = Fl_locking.Sfll.lock rng ~key_bits:6 ~h:1 (host ~inputs:8 ()) in
  match Bypass.run ~max_cubes:80 l with
  | Bypass.Bypassed { cubes; repaired; _ } ->
    check bool_t "bounded cubes" true (List.length cubes <= 80);
    check bool_t "repaired equals oracle" true
      (Fl_sat.Equiv.check repaired l.Locked.oracle = Fl_sat.Equiv.Equivalent)
  | Bypass.Too_many_cubes _ | Bypass.Inconclusive ->
    Alcotest.fail "bypass should break sfll-hd at small h"

let test_bypass_fails_on_fulllock () =
  (* High corruption: a wrong key disagrees on a large fraction of the input
     space, so minterm enumeration blows past any practical bypass budget. *)
  let rng = Random.State.make [| 43 |] in
  let l = Fulllock.lock_one rng ~n:4 (host ~gates:80 ~inputs:10 ()) in
  match Bypass.run ~max_cubes:24 ~timeout:60.0 l with
  | Bypass.Too_many_cubes { found; _ } ->
    check bool_t "blew the budget" true (found > 24)
  | Bypass.Bypassed { cubes; _ } ->
    Alcotest.failf "unexpected bypass with %d cubes" (List.length cubes)
  | Bypass.Inconclusive -> ()

let test_bypass_fails_on_rll () =
  (* RLL also corrupts broadly — bypass is the point-function killer only. *)
  let rng = Random.State.make [| 44 |] in
  let l = Fl_locking.Rll.lock rng ~key_bits:8 (host ~inputs:10 ()) in
  match Bypass.run ~max_cubes:24 ~timeout:60.0 l with
  | Bypass.Too_many_cubes _ -> ()
  | Bypass.Bypassed { cubes; _ } ->
    (* a lucky wrong key may corrupt only a few cubes; accept small repairs *)
    check bool_t "only small bypass accepted" true (List.length cubes <= 24)
  | Bypass.Inconclusive -> ()

(* ------------------------------------------------------------------ *)
(* SPS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sps_probability_sanity () =
  let b = Circuit.Builder.create ~name:"p" () in
  let x = Circuit.Builder.input ~name:"x" b in
  let y = Circuit.Builder.input ~name:"y" b in
  let g_and = Circuit.Builder.add ~name:"g_and" b Gate.And [| x; y |] in
  let g_xor = Circuit.Builder.add ~name:"g_xor" b Gate.Xor [| x; y |] in
  let g_nor3 = Circuit.Builder.add ~name:"g_nor" b Gate.Nor [| x; y; g_xor |] in
  Circuit.Builder.output b "a" g_and;
  Circuit.Builder.output b "b" g_nor3;
  let c = Circuit.of_builder b in
  let p = Sps.probabilities c in
  check (Alcotest.float 1e-9) "and" 0.25 p.(g_and);
  check (Alcotest.float 1e-9) "xor" 0.5 p.(g_xor);
  check bool_t "nor3 low" true (p.(g_nor3) < 0.25)

let test_sps_flags_antisat () =
  let rng = Random.State.make [| 21 |] in
  let l = Fl_locking.Antisat.lock rng ~key_bits:16 (host ~inputs:10 ()) in
  check bool_t "identified" true (Sps.identifies_block l)

let test_sps_does_not_flag_fulllock () =
  let rng = Random.State.make [| 22 |] in
  let l = Fulllock.lock_one rng ~n:8 (host ~gates:120 ~inputs:12 ()) in
  check bool_t "not identified" false (Sps.identifies_block l)

(* ------------------------------------------------------------------ *)
(* Affine                                                              *)
(* ------------------------------------------------------------------ *)

let test_affine_fits_cln () =
  (* A bare CLN (permutation + inversions) is affine — the §4.2.3
     vulnerability of routing-only obfuscation. *)
  let rng = Random.State.make [| 23 |] in
  let l = Fulllock.standalone_cln_lock (Cln.default_spec ~n:8) rng in
  let fit = Affine.attack_oracle l in
  check bool_t "affine" true fit.Affine.is_affine

let test_affine_rejects_nonlinear () =
  (* Append one AND gate to a permutation: no longer affine. *)
  let f x =
    [| x.(1); x.(0); x.(2) && x.(1) |]
  in
  let fit = Affine.fit_function ~arity:3 f in
  check bool_t "not affine" false fit.Affine.is_affine;
  check bool_t "counterexamples seen" true (fit.Affine.counterexamples > 0)

let test_affine_apply_matches () =
  let rng = Random.State.make [| 24 |] in
  let l = Fulllock.standalone_cln_lock (Cln.blocking_spec ~n:8) rng in
  let fit = Affine.attack_oracle l in
  let x = Sim.random_vector (Random.State.make [| 3 |]) 8 in
  check (Alcotest.array bool_t) "fit reproduces oracle"
    (Locked.query_oracle l x) (Affine.apply fit x)

let test_affine_rejects_plr () =
  (* CLN followed by key-programmed AND-like LUTs (the PLR shape): pairs of
     CLN outputs feed 2-input gates — not affine. *)
  let rng = Random.State.make [| 25 |] in
  let spec = Cln.default_spec ~n:8 in
  let key = Cln.random_routable_key spec rng in
  let action = Cln.decode spec ~key in
  let f x =
    let routed = Cln.apply_action action x in
    Array.init 4 (fun i -> routed.(2 * i) && routed.((2 * i) + 1))
  in
  let fit = Affine.fit_function ~arity:8 f in
  check bool_t "plr not affine" false fit.Affine.is_affine

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_case ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_sat_attack_recovers_function =
  (* Whatever scheme, on small instances the SAT attack's recovered key is
     functionally correct (acyclic circuits only). *)
  let gen = QCheck2.Gen.(pair (int_bound 1000) (int_range 0 3)) in
  qcheck_case "sat attack sound on acyclic schemes" gen (fun (seed, which) ->
      let c = host ~seed:(seed + 31) () in
      let rng = Random.State.make [| seed |] in
      let l =
        match which with
        | 0 -> Fl_locking.Rll.lock rng ~key_bits:5 c
        | 1 -> Fl_locking.Mux_lock.lock rng ~key_bits:5 c
        | 2 -> Fl_locking.Lut_lock.lock rng ~gates:3 c
        | _ -> Fl_locking.Cross_lock.lock rng ~n:4 c
      in
      let r = Sat_attack.run ~timeout:60.0 l in
      broken_correct r)

let prop_cycsat_sound_on_cyclic_fulllock =
  let gen = QCheck2.Gen.int_bound 1000 in
  qcheck_case ~count:6 "cycsat sound on cyclic full-lock" gen (fun seed ->
      let c = host ~seed:(seed + 77) ~gates:90 () in
      let rng = Random.State.make [| seed |] in
      let l = Fulllock.lock_one rng ~policy:`Cyclic ~n:4 c in
      let r = Cycsat.run ~timeout:120.0 l in
      broken_correct r)

(* ------------------------------------------------------------------ *)
(* DIP screening vs reference                                          *)
(* ------------------------------------------------------------------ *)

module Session = Fl_attacks.Session

(* Drive the CEGAR loop by hand through [dip_fn] until the miter is
   exhausted, returning the recovered key and iteration count. *)
let recover_key ~dip_fn l =
  let deadline = Unix.gettimeofday () +. 60.0 in
  let s = Session.create ~deadline l in
  let rec loop () =
    match dip_fn s with
    | `Dip dip ->
      Session.observe s dip;
      loop ()
    | `Exhausted ->
      (match Session.candidate_key s with
       | `Key k -> Some (k, Session.iterations s)
       | `None | `Timeout -> None)
    | `Timeout -> None
  in
  loop ()

let test_screened_find_dip_matches_reference () =
  let c_screened = Fl_obs.Counter.make "session.dip.screened" in
  let c_solver = Fl_obs.Counter.make "session.dip.solver" in
  let try_seed seed =
    (* Full-Lock hosts: enough iterations for the witness pool to fill, and
       wrong permutations corrupt densely, so the screen genuinely fires. *)
    let rng = Random.State.make [| seed |] in
    let l = Fulllock.lock_one rng ~n:4 (host ~seed:(seed + 1) ~gates:80 ()) in
    let s0 = Fl_obs.Counter.value c_screened in
    let v0 = Fl_obs.Counter.value c_solver in
    let screened = recover_key ~dip_fn:Session.find_dip l in
    let ds = Fl_obs.Counter.value c_screened - s0 in
    let dv = Fl_obs.Counter.value c_solver - v0 in
    let reference = recover_key ~dip_fn:Session.find_dip_reference l in
    (match screened, reference with
     | Some (k1, iters), Some (k2, _) ->
       check bool_t "screened loop recovers a correct key" true
         (Locked.key_matches l ~key:k1);
       check bool_t "reference loop recovers a correct key" true
         (Locked.key_matches l ~key:k2);
       (* Every DIP of the screened loop came from exactly one source. *)
       check Alcotest.int "screened + solver DIPs = iterations" iters (ds + dv)
     | _ -> Alcotest.fail "both loops should exhaust the miter");
    ds
  in
  (* Across a few instances the screen must actually fire, not just be a
     no-op that trivially agrees with the reference. *)
  let total_screened = List.fold_left (fun acc s -> acc + try_seed s) 0 [ 7; 8; 9 ] in
  check bool_t "screening produced at least one DIP" true (total_screened > 0)

(* ------------------------------------------------------------------ *)
(* Preprocessed vs reference attack paths                              *)
(* ------------------------------------------------------------------ *)

let test_preprocessed_attack_matches_reference () =
  (* Both paths must recover a functionally correct key (different search
     orders may yield different-but-correct keys). *)
  let attack_both name l =
    let r_pre = Sat_attack.run ~timeout:120.0 ~preprocess:true l in
    let r_ref = Sat_attack.run ~timeout:120.0 ~preprocess:false l in
    check bool_t (name ^ ": preprocessed path breaks it") true
      (broken_correct r_pre);
    check bool_t (name ^ ": reference path breaks it") true (broken_correct r_ref)
  in
  let rng = Random.State.make [| 51 |] in
  (* c17 is too small to host a Full-Lock block; RLL exercises the same
     session machinery. *)
  attack_both "c17"
    (Fl_locking.Rll.lock rng ~key_bits:4 (Fl_netlist.Bench_suite.c17 ()));
  let rng = Random.State.make [| 52 |] in
  attack_both "c432/4"
    (Fulllock.lock_one rng ~n:4 (Fl_netlist.Bench_suite.load_scaled "c432" ~scale:4))

let test_inprocessed_attack_matches_reference () =
  (* The periodic solver rebuilds must not change the CEGAR verdict: both
     paths recover a functionally correct key on the same instance (keys
     may differ; both must pass the oracle-equivalence check). A tight
     --inprocess-every forces several rebuild+learnt-replay cycles. *)
  let attack_both name l =
    let r_inp =
      Sat_attack.run ~timeout:120.0 ~inprocess:true ~inprocess_every:2
        ~inprocess_min_conflicts:0 l
    in
    let r_ref = Sat_attack.run ~timeout:120.0 l in
    check bool_t (name ^ ": inprocessed path breaks it") true
      (broken_correct r_inp);
    check bool_t (name ^ ": reference path breaks it") true
      (broken_correct r_ref)
  in
  let rng = Random.State.make [| 61 |] in
  attack_both "rll"
    (Fl_locking.Rll.lock rng ~key_bits:6 (host ()));
  let rng = Random.State.make [| 62 |] in
  attack_both "fulllock/4" (Fulllock.lock_one rng ~n:4 (host ~gates:80 ()))

let test_inprocess_session_runs_and_logs () =
  (* With a tiny period the session must actually run inprocessing and
     record one stats entry per run, and the attack must still succeed. *)
  let rng = Random.State.make [| 63 |] in
  let l = Fl_locking.Sarlock.lock rng ~key_bits:5 (host ()) in
  let deadline = Unix.gettimeofday () +. 60.0 in
  let s =
    Session.create ~inprocess:true ~inprocess_every:2
      ~inprocess_min_conflicts:0 ~deadline l
  in
  let key = ref None in
  (try
     while true do
       match Session.find_dip s with
       | `Dip dip -> Session.observe s dip
       | `Exhausted ->
         (match Session.candidate_key s with
          | `Key k -> key := Some k
          | _ -> ());
         raise Exit
       | `Timeout -> raise Exit
     done
   with Exit -> ());
  check bool_t "key found" true (!key <> None);
  let runs = Session.inprocess_stats s in
  check bool_t "inprocessing ran" true (List.length runs >= 1);
  List.iter
    (fun st ->
      check bool_t "no clause growth" true
        (st.Fl_sat.Inprocess.clauses_after
         <= st.Fl_sat.Inprocess.clauses_before))
    runs;
  (* Disabled by default: no log entries. *)
  let s_off = Session.create ~deadline l in
  check bool_t "off by default" true (Session.inprocess_stats s_off = [])

let test_session_preprocess_reduces () =
  (* The default session runs the one-shot miter preprocessing and reports
     a genuinely smaller formula. *)
  let rng = Random.State.make [| 53 |] in
  let l = Fulllock.lock_one rng ~n:4 (host ~gates:80 ()) in
  let deadline = Unix.gettimeofday () +. 60.0 in
  let s = Session.create ~deadline l in
  (match Session.preprocess_stats s with
   | None -> Alcotest.fail "preprocessing should be on by default"
   | Some st ->
     check bool_t "clauses reduced" true
       (st.Fl_sat.Preprocess.clauses_after < st.Fl_sat.Preprocess.clauses_before);
     check bool_t "no variables resurrected" true
       (st.Fl_sat.Preprocess.vars_after <= st.Fl_sat.Preprocess.vars_before));
  let s_off = Session.create ~preprocess:false ~deadline l in
  check bool_t "flag disables preprocessing" true
    (Session.preprocess_stats s_off = None)

(* ------------------------------------------------------------------ *)
(* Portfolio-fronted attacks                                           *)
(* ------------------------------------------------------------------ *)

module Portfolio = Fl_sat.Portfolio
module Obs = Fl_obs
module Cdcl = Fl_sat.Cdcl

(* Run an attack while capturing its attack.* records; returns the result
   and the sum of the per-record solver-stats deltas. *)
let run_recorded ?portfolio l =
  let sum = ref Cdcl.zero_stats in
  let field_int name e =
    match List.assoc_opt name e.Obs.fields with
    | Some (Obs.Int i) -> i
    | _ -> 0
  in
  let sink e =
    match e.Obs.name with
    | "attack.iteration" | "attack.exhausted" | "attack.timeout" ->
      sum :=
        Cdcl.add_stats !sum
          {
            Cdcl.decisions = field_int "decisions" e;
            propagations = field_int "propagations" e;
            conflicts = field_int "conflicts" e;
            restarts = field_int "restarts" e;
            learned_clauses = field_int "learned_clauses" e;
            learned_literals = field_int "learned_literals" e;
            reductions = field_int "reductions" e;
            max_decision_level = field_int "max_decision_level" e;
          }
    | _ -> ()
  in
  let r =
    Obs.with_sink sink (fun () -> Sat_attack.run ~timeout:60.0 ?portfolio l)
  in
  r, !sum

let prop_portfolio_det_matches_reference =
  (* A deterministic portfolio with seed 0 fronts the miter with the base
     Cdcl configuration and spawns no domains: the attack must reproduce
     the sequential reference bit-for-bit — status, DIP sequence and
     accumulated solver stats — and the per-iteration records' deltas must
     still sum to the final solver stats (the attack-record invariant,
     which holds because Portfolio.stats is the member-wise sum and so
     stays monotone across solves). *)
  qcheck_case ~count:6 "det portfolio = sequential reference"
    (QCheck2.Gen.int_bound 1000)
    (fun seed ->
      let c = host ~seed:(seed + 53) () in
      let rng = Random.State.make [| seed |] in
      let l = Fl_locking.Rll.lock rng ~key_bits:6 c in
      let spec =
        { Portfolio.default_spec with
          Portfolio.workers = 4; seed = 0; deterministic = true }
      in
      let r_ref, sum_ref = run_recorded l in
      let r_pf, sum_pf = run_recorded ~portfolio:spec l in
      let same_status =
        match r_ref.Sat_attack.status, r_pf.Sat_attack.status with
        | Sat_attack.Broken a, Sat_attack.Broken b -> a = b
        | a, b -> a = b
      in
      same_status
      && r_ref.Sat_attack.dips = r_pf.Sat_attack.dips
      && r_ref.Sat_attack.iterations = r_pf.Sat_attack.iterations
      && r_ref.Sat_attack.solver = r_pf.Sat_attack.solver
      && sum_ref = r_ref.Sat_attack.solver
      && sum_pf = r_pf.Sat_attack.solver)

let prop_portfolio_race_sound =
  (* A real 2-worker race is not bit-reproducible, but it must agree with
     the reference on the attack outcome: same breakable instances, and
     the recovered key functionally correct. *)
  qcheck_case ~count:6 "raced portfolio attack sound"
    (QCheck2.Gen.int_bound 1000)
    (fun seed ->
      let c = host ~seed:(seed + 67) () in
      let rng = Random.State.make [| seed |] in
      let l = Fl_locking.Rll.lock rng ~key_bits:6 c in
      let spec = { Portfolio.default_spec with Portfolio.workers = 2 } in
      let r = Sat_attack.run ~timeout:60.0 ~portfolio:spec l in
      broken_correct r)

let test_portfolio_cube_attack () =
  (* cube_depth > 0 with no cube_vars: the session must fill them from the
     fanout ranking and the cubed attack must still break the lock. *)
  let rng = Random.State.make [| 91 |] in
  let l = Fulllock.lock_one rng ~policy:`Acyclic ~n:4 (host ~gates:80 ()) in
  let spec =
    { Portfolio.default_spec with Portfolio.workers = 2; cube_depth = 2 }
  in
  let r = Sat_attack.run ~timeout:60.0 ~portfolio:spec l in
  check bool_t "cubed attack broke the lock" true (broken_correct r)

let () =
  Alcotest.run "attacks"
    [
      ( "sat_attack",
        [
          Alcotest.test_case "breaks rll" `Quick test_sat_breaks_rll;
          Alcotest.test_case "breaks mux" `Quick test_sat_breaks_mux_lock;
          Alcotest.test_case "breaks lutlock" `Quick test_sat_breaks_lut_lock;
          Alcotest.test_case "breaks crosslock" `Quick test_sat_breaks_cross_lock;
          Alcotest.test_case "sarlock needs many DIPs" `Slow test_sarlock_needs_many_iterations;
          Alcotest.test_case "breaks small cln" `Quick test_sat_breaks_small_cln;
          Alcotest.test_case "breaks small fulllock" `Slow test_sat_breaks_small_fulllock;
          Alcotest.test_case "timeout" `Quick test_sat_timeout_reported;
          Alcotest.test_case "iteration limit" `Quick test_sat_iteration_limit;
          Alcotest.test_case "ratio" `Quick test_sat_ratio_positive;
          Alcotest.test_case "screened dips = reference" `Quick
            test_screened_find_dip_matches_reference;
          Alcotest.test_case "preprocessed = reference" `Slow
            test_preprocessed_attack_matches_reference;
          Alcotest.test_case "inprocessed = reference" `Slow
            test_inprocessed_attack_matches_reference;
          Alcotest.test_case "inprocess session logs" `Quick
            test_inprocess_session_runs_and_logs;
          Alcotest.test_case "session preprocess reduces" `Quick
            test_session_preprocess_reduces;
        ] );
      ( "cycsat",
        [
          Alcotest.test_case "breaks cyclic fulllock" `Slow test_cycsat_breaks_cyclic_fulllock;
          Alcotest.test_case "acyclic = sat" `Quick test_cycsat_on_acyclic_equals_sat;
          Alcotest.test_case "breaks cyclic-lock" `Quick test_cycsat_breaks_cyclic_lock;
          Alcotest.test_case "NC admits correct key" `Quick test_nc_conditions_allow_correct_key;
        ] );
      ( "appsat",
        [
          Alcotest.test_case "approximates sarlock" `Slow test_appsat_approximates_sarlock;
          Alcotest.test_case "approximates sfll" `Slow test_appsat_approximates_sfll;
          Alcotest.test_case "sfll many DIPs" `Slow test_sat_on_sfll_needs_many_iterations;
          Alcotest.test_case "exact on rll" `Quick test_appsat_exact_on_rll;
        ] );
      ( "brute_force",
        [
          Alcotest.test_case "small" `Quick test_brute_force_small;
          Alcotest.test_case "rejects large" `Quick test_brute_force_rejects_large;
          Alcotest.test_case "agrees with sat" `Quick test_brute_force_agrees_with_sat;
        ] );
      ( "removal",
        [
          Alcotest.test_case "breaks sarlock" `Quick test_removal_breaks_sarlock;
          Alcotest.test_case "breaks antisat" `Quick test_removal_breaks_antisat;
          Alcotest.test_case "fails on fulllock" `Quick test_removal_fails_on_fulllock;
          Alcotest.test_case "fails on crosslock" `Quick test_removal_fails_on_crosslock_with_secret_routing;
        ] );
      ( "bypass",
        [
          Alcotest.test_case "breaks sarlock" `Quick test_bypass_breaks_sarlock;
          Alcotest.test_case "breaks sfll" `Quick test_bypass_breaks_sfll;
          Alcotest.test_case "fails on fulllock" `Quick test_bypass_fails_on_fulllock;
          Alcotest.test_case "fails on rll" `Quick test_bypass_fails_on_rll;
        ] );
      ( "sps",
        [
          Alcotest.test_case "probability sanity" `Quick test_sps_probability_sanity;
          Alcotest.test_case "flags antisat" `Quick test_sps_flags_antisat;
          Alcotest.test_case "ignores fulllock" `Quick test_sps_does_not_flag_fulllock;
        ] );
      ( "affine",
        [
          Alcotest.test_case "fits cln" `Quick test_affine_fits_cln;
          Alcotest.test_case "rejects nonlinear" `Quick test_affine_rejects_nonlinear;
          Alcotest.test_case "apply matches" `Quick test_affine_apply_matches;
          Alcotest.test_case "rejects plr" `Quick test_affine_rejects_plr;
        ] );
      ( "properties",
        [ prop_sat_attack_recovers_function; prop_cycsat_sound_on_cyclic_fulllock ] );
      ( "portfolio",
        [
          prop_portfolio_det_matches_reference;
          prop_portfolio_race_sound;
          Alcotest.test_case "cube attack, auto-ranked vars" `Quick
            test_portfolio_cube_attack;
        ] );
    ]
