(* Table 4: CycSAT execution time on Full-Lock with different numbers and
   sizes of PLRs over the ISCAS-85/MCNC suite (synthetic hosts with the
   paper's gate/IO counts; see DESIGN.md).

   Scaled: hosts are shrunk, PLR sizes are 8x8/16x16 instead of 16x16/32x32,
   and the timeout is seconds instead of 2e6 s.  The shape to reproduce:
   adding PLRs (or growing them) pushes every circuit over the attack
   budget.

   Every (circuit, configuration) cell is one self-contained Fl_par task:
   the task loads its host, locks it and runs the attack inside its own
   domain, and results land back by task index, so the table — and the
   deterministic status fields of BENCH_table4.json — is identical under
   any --jobs width. *)

module Bench_suite = Fl_netlist.Bench_suite
module Fulllock = Fl_core.Fulllock
module Cycsat = Fl_attacks.Cycsat
module Sat_attack = Fl_attacks.Sat_attack
module Locked = Fl_locking.Locked

(* One attack cell: (display string, deterministic status).  The display
   string may carry wall time; the status is what the JSON summary keeps.
   The budget is a solver-conflict cap, not wall clock: conflicts are
   machine-load-independent, so a cell reaches the same status whether its
   domain had a core to itself or shared one with the rest of the sweep.
   [timeout] stays as a generous backstop only. *)
let attack_cell ~timeout ~max_conflicts circuit ~plr_n ~plr_count ~seed =
  let rng = Random.State.make [| seed; plr_n; plr_count |] in
  let configs = List.init plr_count (fun _ -> Fulllock.default_config ~n:plr_n) in
  match Fulllock.lock rng ~policy:`Cyclic ~configs circuit with
  | exception Invalid_argument _ -> "n/a", "n/a"
  | locked ->
    let r = Cycsat.run ~timeout ~max_conflicts locked in
    (match r.Sat_attack.status with
     | Sat_attack.Broken _ when r.Sat_attack.key_is_correct ->
       Tables.seconds r.Sat_attack.wall_time, "broken"
     | Sat_attack.Broken _ ->
       Tables.seconds r.Sat_attack.wall_time ^ " (wrong)", "broken-wrong"
     | Sat_attack.Timeout -> "TO", "TO"
     | Sat_attack.No_key_found -> "no-key", "no-key"
     | Sat_attack.Iteration_limit -> "iter", "iter")

let run ~deep ~pool () =
  let max_conflicts = if deep then 400_000 else 80_000 in
  let timeout = if deep then 1200.0 else 240.0 in
  let scale = if deep then 2 else 4 in
  let circuits =
    if deep then Bench_suite.names
    else [ "c432"; "c499"; "c880"; "c1355"; "apex2"; "i4" ]
  in
  (* The paper's columns are 16x16 and 32x32 PLRs at its 2e6 s budget; at the
     default seconds-scale budget the staircase is visible one size class
     down. *)
  let small = if deep then 8 else 4 and large = if deep then 16 else 8 in
  let configs = [ small, 1; small, 2; large, 1; large, 2 ] in
  let header =
    "circuit"
    :: List.map (fun (n, count) -> Printf.sprintf "%dx%dx%d" count n n) configs
  in
  let tasks =
    List.concat_map
      (fun name -> List.map (fun (n, count) -> name, n, count) configs)
      circuits
  in
  let cells =
    Fl_par.map_list pool
      (fun (name, plr_n, plr_count) ->
        let c = Bench_suite.load_scaled name ~scale in
        attack_cell ~timeout ~max_conflicts c ~seed:(Hashtbl.hash name) ~plr_n
          ~plr_count)
      tasks
    |> List.map Fl_par.get
  in
  let per_circuit = List.length configs in
  let rows =
    List.mapi
      (fun i name ->
        let mine =
          List.filteri
            (fun j _ -> j / per_circuit = i)
            (List.map fst cells)
        in
        name :: mine)
      circuits
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "Table 4 — CycSAT time (s) on Full-Lock, suite hosts at 1/%d scale, budget %dk conflicts \
          (paper: 16x16/32x32 PLRs, 2e6 s)"
         scale (max_conflicts / 1000))
    header rows;
  Report.add_section "results"
    (List.map2
       (fun (name, n, count) (_, status) ->
         Printf.sprintf "%s %dx%dx%d" name count n n, Fl_obs.String status)
       tasks cells);
  Report.add_alloc ();
  Report.add_parallelism ~jobs:(Fl_par.jobs pool) (Fl_par.last_stats pool);
  print_endline
    "TO = conflict budget exhausted.  Shape reproduced: one small PLR is breakable in seconds; adding\n\
     a second PLR or doubling the CLN size pushes instances past the budget —\n\
     the paper's Table 4 shows the same staircase at its (much larger) scale."
