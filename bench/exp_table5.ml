(* Table 5: smallest SAT-resilient PLR configuration per circuit, compared
   with the crossbar count Cross-Lock needs.  The ladder of configurations
   is probed bottom-up with the (scaled) attack budget; the paper's shape is
   that Full-Lock needs far less routing fabric than Cross-Lock. *)

module Bench_suite = Fl_netlist.Bench_suite
module Fulllock = Fl_core.Fulllock
module Cross_lock = Fl_locking.Cross_lock
module Cycsat = Fl_attacks.Cycsat
module Sat_attack = Fl_attacks.Sat_attack

(* Resilience = the attack exhausts its budget.  The budget is a solver
   conflict cap (machine-load-independent) so the probe ladder settles on
   the same configuration at any --jobs width; [timeout] is a generous
   wall backstop only. *)
let resilient_full_lock ~timeout ~max_conflicts circuit ~sizes ~seed =
  let rng = Random.State.make [| seed |] in
  let configs = List.map (fun n -> Fulllock.default_config ~n) sizes in
  match Fulllock.lock rng ~policy:`Cyclic ~configs circuit with
  | exception Invalid_argument _ -> None
  | locked ->
    let r = Cycsat.run ~timeout ~max_conflicts locked in
    (match r.Sat_attack.status with
     | Sat_attack.Timeout -> Some true
     | Sat_attack.Broken _ | Sat_attack.No_key_found | Sat_attack.Iteration_limit ->
       Some false)

(* Several crossbars = chain the pass; the oracle stays the original and the
   correct key is the concatenation (key order = key-input creation order,
   which appending preserves). *)
let resilient_cross_lock ~timeout ~max_conflicts circuit ~n ~count ~seed =
  let rng = Random.State.make [| seed; n; count |] in
  let rec extend i (acc : Fl_locking.Locked.t) =
    if i = 0 then Some acc
    else
      match Cross_lock.lock rng ~n acc.Fl_locking.Locked.locked with
      | exception Invalid_argument _ -> None
      | next ->
        extend (i - 1)
          {
            acc with
            Fl_locking.Locked.locked = next.Fl_locking.Locked.locked;
            correct_key =
              Array.append acc.Fl_locking.Locked.correct_key
                next.Fl_locking.Locked.correct_key;
          }
  in
  match Cross_lock.lock rng ~n circuit with
  | exception Invalid_argument _ -> None
  | first ->
    (match extend (count - 1) first with
     | None -> None
     | Some locked ->
       let r = Cycsat.run ~timeout ~max_conflicts locked in
       (match r.Sat_attack.status with
        | Sat_attack.Timeout -> Some true
        | Sat_attack.Broken _ | Sat_attack.No_key_found
        | Sat_attack.Iteration_limit ->
          Some false))

let ladder ~deep =
  if deep then [ [ 8 ]; [ 8; 8 ]; [ 16 ]; [ 16; 8 ]; [ 16; 16 ]; [ 16; 16; 8 ] ]
  else [ [ 4 ]; [ 4; 4 ]; [ 8 ]; [ 8; 4 ]; [ 8; 8 ]; [ 8; 8; 4 ] ]

let describe sizes =
  let counts = Hashtbl.create 4 in
  List.iter
    (fun n ->
      Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
    sizes;
  Hashtbl.fold (fun n c acc -> Printf.sprintf "%dx%dx%d" c n n :: acc) counts []
  |> List.sort compare
  |> String.concat " + "

(* A circuit's bottom-up ladder probe is inherently sequential (each rung
   depends on the previous failing), so the Fl_par unit is one probe — two
   tasks per circuit, Full-Lock's ladder and Cross-Lock's count sweep. *)
let probe_full_lock ~deep ~timeout ~max_conflicts c ~seed =
  let rec probe = function
    | [] -> "> ladder"
    | sizes :: rest ->
      (match resilient_full_lock ~timeout ~max_conflicts c ~sizes ~seed with
       | Some true -> describe sizes
       | Some false | None -> probe rest)
  in
  probe (ladder ~deep)

let probe_cross_lock ~deep ~timeout ~max_conflicts c ~seed =
  let xn = if deep then 8 else 4 in
  let rec probe count =
    if count > 6 then "> 6"
    else
      match resilient_cross_lock ~timeout ~max_conflicts c ~n:xn ~count ~seed with
      | Some true -> Printf.sprintf "%dx%dx%d" count xn xn
      | Some false | None -> probe (count + 1)
  in
  probe 1

let run ~deep ~pool () =
  let max_conflicts = if deep then 200_000 else 50_000 in
  let timeout = if deep then 600.0 else 120.0 in
  let scale = if deep then 2 else 4 in
  let circuits =
    if deep then Bench_suite.names else [ "c432"; "c880"; "c1355"; "apex2"; "i4" ]
  in
  let tasks =
    List.concat_map (fun name -> [ name, `Full; name, `Cross ]) circuits
  in
  let cells =
    Fl_par.map_list pool
      (fun (name, which) ->
        let c = Bench_suite.load_scaled name ~scale in
        let seed = Hashtbl.hash name in
        match which with
        | `Full -> probe_full_lock ~deep ~timeout ~max_conflicts c ~seed
        | `Cross -> probe_cross_lock ~deep ~timeout ~max_conflicts c ~seed)
      tasks
    |> List.map Fl_par.get
  in
  let rows =
    List.mapi
      (fun i name ->
        let entry = Option.get (Bench_suite.find name) in
        let full_lock = List.nth cells (2 * i) in
        let cross_lock = List.nth cells ((2 * i) + 1) in
        [
          name;
          string_of_int entry.Bench_suite.gates;
          Printf.sprintf "%d/%d" entry.Bench_suite.inputs entry.Bench_suite.outputs;
          full_lock;
          cross_lock;
        ])
      circuits
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "Table 5 — smallest SAT-resilient configuration at 1/%d scale, %dk-conflict budget \
          (paper: 16x16/32x32 PLRs vs 32x36 crossbars, 2e6 s)"
         scale (max_conflicts / 1000))
    [ "circuit"; "gates (full)"; "I/O (full)"; "Full-Lock PLRs"; "Cross-Lock crossbars" ]
    rows;
  Report.add_section "results"
    (List.map2
       (fun (name, which) cell ->
         ( Printf.sprintf "%s %s" name
             (match which with `Full -> "full_lock" | `Cross -> "cross_lock"),
           Fl_obs.String cell ))
       tasks cells);
  Report.add_parallelism ~jobs:(Fl_par.jobs pool) (Fl_par.last_stats pool);
  print_endline
    "Shape reproduced when Full-Lock reaches resilience with less routing fabric\n\
     than Cross-Lock (cascaded switch-boxes vs one shallow crossbar per output)."
