(* Machine-readable experiment summaries.

   Every experiment run through bench/main.exe gets a BENCH_<name>.json
   written next to its printed table: a flat JSON object with the
   experiment name, wall-clock seconds, the Fl_obs counter snapshot and
   the deep-telemetry histograms (cdcl.lbd, cdcl.conflict_level,
   par.queue_wait_s, ...), plus whatever fields and sections the
   experiment registered while it ran.  Experiments stay printf-style;
   they just call [add_*] for the numbers worth tracking across PRs. *)

type entry =
  | Scalar of string * Fl_obs.value
  | Section of string * (string * Fl_obs.value) list

let entries : entry list ref = ref []

let reset () = entries := []

let add name v = entries := Scalar (name, v) :: !entries
let add_int name i = add name (Fl_obs.Int i)
let add_float name f = add name (Fl_obs.Float f)
let add_string name s = add name (Fl_obs.String s)
let add_bool name b = add name (Fl_obs.Bool b)

(* [add_section name fields] nests [fields] as a JSON sub-object. *)
let add_section name fields = entries := Section (name, fields) :: !entries

(* [add_alloc ()] records the GC's allocation view of the run so far as an
   "alloc" section: words allocated (minor/promoted/major), collection and
   heap-compaction counts, and current/peak major-heap words.  Taken at the
   end of an experiment this approximates its allocation cost — the number
   the clause-arena layout is meant to push down — with the caveat that in
   a multi-domain run it only sees the calling domain's minor counters. *)
let add_alloc () =
  let g = Gc.quick_stat () in
  add_section "alloc"
    [
      "minor_words", Fl_obs.Float g.Gc.minor_words;
      "promoted_words", Fl_obs.Float g.Gc.promoted_words;
      "major_words", Fl_obs.Float g.Gc.major_words;
      "minor_collections", Fl_obs.Int g.Gc.minor_collections;
      "major_collections", Fl_obs.Int g.Gc.major_collections;
      "compactions", Fl_obs.Int g.Gc.compactions;
      "heap_words", Fl_obs.Int g.Gc.heap_words;
      "top_heap_words", Fl_obs.Int g.Gc.top_heap_words;
    ]

(* [add_parallelism ~jobs stats] records a parallel sweep's pool accounting:
   the pool width and the summed-task-time / wall-time ratio.  These are the
   only fields of a sweep's summary expected to vary with --jobs. *)
let add_parallelism ~jobs (s : Fl_par.batch_stats) =
  add_int "jobs" jobs;
  add_float "task_seconds" s.Fl_par.task_seconds;
  add_float "speedup"
    (if s.Fl_par.wall_seconds > 0.0 then
       s.Fl_par.task_seconds /. s.Fl_par.wall_seconds
     else 1.0)

let buf_member buf ~first name value_str =
  if not !first then Buffer.add_string buf ",\n";
  first := false;
  Buffer.add_string buf "  ";
  Buffer.add_string buf (Fl_obs.Json.string_to_string name);
  Buffer.add_string buf ": ";
  Buffer.add_string buf value_str

let object_str fields =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) ->
           Fl_obs.Json.string_to_string k ^ ": " ^ Fl_obs.Json.value_to_string v)
         fields)
  ^ "}"

(* [write ~experiment ~wall_s] emits BENCH_<experiment>.json and clears the
   registered entries for the next experiment. *)
let write ~experiment ~wall_s =
  let buf = Buffer.create 512 in
  let first = ref true in
  Buffer.add_string buf "{\n";
  buf_member buf ~first "experiment"
    (Fl_obs.Json.string_to_string experiment);
  buf_member buf ~first "wall_seconds"
    (Fl_obs.Json.value_to_string (Fl_obs.Float wall_s));
  List.iter
    (fun entry ->
      match entry with
      | Scalar (name, v) ->
        buf_member buf ~first name (Fl_obs.Json.value_to_string v)
      | Section (name, fields) -> buf_member buf ~first name (object_str fields))
    (List.rev !entries);
  buf_member buf ~first "counters" (object_str (Fl_obs.snapshot ()));
  (* One sub-object per histogram: summary stats plus the sparse bucket
     vector (Fl_obs.Hist.json), so fltrace/of_json can reload the exact
     distribution from the committed report. *)
  (match Fl_obs.hist_snapshot () with
   | [] -> ()
   | hists ->
     buf_member buf ~first "histograms"
       ("{"
        ^ String.concat ", "
            (List.map
               (fun (h : Fl_obs.Hist.snap) ->
                 Fl_obs.Json.string_to_string h.Fl_obs.Hist.hname ^ ": "
                 ^ Fl_obs.Hist.json h)
               hists)
        ^ "}"));
  Buffer.add_string buf "\n}\n";
  let path = "BENCH_" ^ experiment ^ ".json" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  reset ()
