(* Experiment harness: one sub-command per table/figure of the paper, plus
   the supplementary security experiments, ablations and micro benches.

   Usage:  main.exe [experiment ...] [--deep] [--trace FILE] [--jobs N]
                    [--baseline FILE] [--tolerance X]
                    [--inprocess|--no-inprocess] [--inprocess-every N]
                    [--portfolio N] [--portfolio-det] [--seed N]
                    [--cube-depth D] [--cdcl-* ...]
           main.exe all            (default; every experiment, scaled budget)
           main.exe micro          (Bechamel micro-benchmarks)

   --deep raises sizes and timeouts toward (but nowhere near) the paper's
   2e6-second testbed budget.  --trace installs a JSONL Fl_obs sink: every
   structured event of the run (per-iteration attack records, solver
   progress, spans) is appended to FILE, one JSON object per line.
   --jobs N sets the width of the Fl_par pool the sweep experiments
   (table4, cnf, table5, fig7, coverage, removal, corruption) fan their
   per-circuit attack runs through; the default is
   recommended_domain_count - 1, and --jobs 1 runs every task inline on
   the main domain — bit-for-bit the sequential behaviour.

   Each experiment also writes a machine-readable BENCH_<name>.json
   summary — wall time, the Fl_obs counter snapshot, the deep-telemetry
   histograms, and the fields the experiment registered through Report.
   --baseline FILE (one experiment only) re-reads the fresh report after
   the run and gates it against the committed FILE with
   Fl_cli.Baseline.gate: statuses must match and watched metrics must stay
   within --tolerance (default 1.25); a regression exits 1. *)

let experiments ~deep ~pool ~inprocess ~portfolio =
  [
    "fig1", (fun () -> Exp_fig1.run ~deep ());
    "table1", (fun () -> Exp_table1.run ());
    "table2", (fun () -> Exp_table2.run ~deep ());
    "table3", (fun () -> Exp_table3.run ~deep ());
    "table4", (fun () -> Exp_table4.run ~deep ~pool ());
    "cnf", (fun () -> Exp_cnf.run ~inprocess ?portfolio ~deep ~pool ());
    "table5", (fun () -> Exp_table5.run ~deep ~pool ());
    "fig5", (fun () -> Exp_fig5.run ());
    "fig7", (fun () -> Exp_fig7.run ~deep ~pool ());
    "coverage", (fun () -> Exp_security.coverage ~deep ~pool ());
    "removal", (fun () -> Exp_security.removal ~deep ~pool ());
    "affine", (fun () -> Exp_security.affine ());
    "corruption", (fun () -> Exp_security.corruption ~deep ~pool ());
    "bdd", (fun () -> Exp_bdd.run ~deep ());
    "ablate", (fun () -> Exp_ablate.run ~deep ());
    "micro", (fun () -> Exp_micro.run ());
    "sim", (fun () -> Exp_micro.sim_throughput ());
  ]

let usage_names table = "all" :: List.map fst table

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let trace, args = Fl_cli.take_opt "--trace" args in
  let jobs_arg, args = Fl_cli.take_opt "--jobs" args in
  let baseline, args = Fl_cli.take_opt "--baseline" args in
  let tolerance_arg, args = Fl_cli.take_opt "--tolerance" args in
  let inprocess, args = Fl_cli.take_inprocess args in
  let portfolio, args = Fl_cli.take_solver args in
  let deep, selected = Fl_cli.take_flag "--deep" args in
  (* Anything still dash-prefixed is a flag we don't know; reject it instead
     of treating it as an (unknown) experiment name. *)
  (match
     List.filter (fun a -> String.length a > 0 && a.[0] = '-') selected
   with
   | [] -> ()
   | unknown ->
     List.iter
       (fun flag ->
         Printf.eprintf
           "unknown flag %s; available: --deep, --trace FILE, --jobs N, \
            --baseline FILE, --tolerance X, --inprocess, --no-inprocess, \
            --inprocess-every N, --portfolio N, --portfolio-det, --seed N, \
            --cube-depth D, --cdcl-var-decay F, --cdcl-restart-base N, \
            --cdcl-phase P, --cdcl-random-freq F\n"
           flag)
       unknown;
     exit 2);
  let jobs =
    match jobs_arg with
    | None -> Fl_cli.default_jobs ()
    | Some s -> Fl_cli.parse_jobs s
  in
  let tolerance =
    match tolerance_arg with
    | None -> 1.25
    | Some s ->
      (match float_of_string_opt s with
       | Some t when t >= 1.0 -> t
       | _ ->
         Printf.eprintf "--tolerance needs a float >= 1, got %S\n" s;
         exit 2)
  in
  (* Deep distribution telemetry is always on for benches: the histograms
     land in every BENCH_<name>.json and the recording cost (one striped
     atomic add per conflict) is noise next to a solve. *)
  Fl_obs.set_deep true;
  let pool = Fl_par.create ~name:"bench" ~jobs () in
  let table = experiments ~deep ~pool ~inprocess ~portfolio in
  (* Reject unknown names up front so `main.exe tabel4 fig7` fails fast
     instead of running fig7 first and erroring an hour in. *)
  (match
     List.filter
       (fun name -> not (List.mem name (usage_names table)))
       selected
   with
   | [] -> ()
   | unknown ->
     List.iter
       (fun name ->
         Printf.eprintf "unknown experiment %S; available: %s\n" name
           (String.concat ", " (usage_names table)))
       unknown;
     exit 2);
  (match trace with None -> () | Some file -> Fl_cli.install_trace file);
  (match baseline, selected with
   | Some _, [ name ] when name <> "all" -> ()
   | Some _, _ ->
     Printf.eprintf "--baseline needs exactly one experiment name\n";
     exit 2
   | None, _ -> ());
  let run_one name =
    let f = List.assoc name table in
    Report.reset ();
    (* Counter/histogram isolation: each BENCH_<name>.json reflects its own
       experiment even in an `all` run. *)
    Fl_obs.reset_metrics ();
    let t0 = Unix.gettimeofday () in
    Fl_obs.with_span ("bench." ^ name) f;
    let wall = Unix.gettimeofday () -. t0 in
    Report.write ~experiment:name ~wall_s:wall;
    Printf.printf "[%s done in %.1fs]\n%!" name wall
  in
  (match selected with
   | [] | [ "all" ] ->
     print_endline
       "Full-Lock experiment suite (scaled budgets; pass --deep for longer runs)";
     List.iter (fun (name, _) -> run_one name) table
   | names -> List.iter run_one names);
  Fl_par.shutdown pool;
  match baseline with
  | None -> ()
  | Some base ->
    let current = "BENCH_" ^ List.hd selected ^ ".json" in
    (match Fl_cli.Baseline.gate ~tolerance ~baseline:base ~current () with
     | Ok () -> ()
     | Error fails ->
       List.iter (fun f -> Printf.eprintf "regression: %s\n" f) fails;
       exit 1
     | exception Failure msg ->
       Printf.eprintf "baseline gate: %s\n" msg;
       exit 2)
