(* Experiment harness: one sub-command per table/figure of the paper, plus
   the supplementary security experiments, ablations and micro benches.

   Usage:  main.exe [experiment ...] [--deep] [--trace FILE]
           main.exe all            (default; every experiment, scaled budget)
           main.exe micro          (Bechamel micro-benchmarks)

   --deep raises sizes and timeouts toward (but nowhere near) the paper's
   2e6-second testbed budget.  --trace installs a JSONL Fl_obs sink: every
   structured event of the run (per-iteration attack records, solver
   progress, spans) is appended to FILE, one JSON object per line.

   Each experiment also writes a machine-readable BENCH_<name>.json
   summary — wall time, the Fl_obs counter snapshot, and the fields the
   experiment registered through Report. *)

let experiments ~deep =
  [
    "fig1", (fun () -> Exp_fig1.run ~deep ());
    "table1", (fun () -> Exp_table1.run ());
    "table2", (fun () -> Exp_table2.run ~deep ());
    "table3", (fun () -> Exp_table3.run ~deep ());
    "table4", (fun () -> Exp_table4.run ~deep ());
    "table5", (fun () -> Exp_table5.run ~deep ());
    "fig5", (fun () -> Exp_fig5.run ());
    "fig7", (fun () -> Exp_fig7.run ~deep ());
    "coverage", (fun () -> Exp_security.coverage ~deep ());
    "removal", (fun () -> Exp_security.removal ~deep ());
    "affine", (fun () -> Exp_security.affine ());
    "corruption", (fun () -> Exp_security.corruption ~deep ());
    "bdd", (fun () -> Exp_bdd.run ~deep ());
    "ablate", (fun () -> Exp_ablate.run ~deep ());
    "micro", (fun () -> Exp_micro.run ());
    "sim", (fun () -> Exp_micro.sim_throughput ());
  ]

let usage_names table = "all" :: List.map fst table

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* Split out --trace FILE before the experiment names. *)
  let trace = ref None in
  let rec strip_trace acc = function
    | [] -> List.rev acc
    | "--trace" :: file :: rest ->
      trace := Some file;
      strip_trace acc rest
    | [ "--trace" ] ->
      prerr_endline "--trace needs a file argument";
      exit 2
    | a :: rest -> strip_trace (a :: acc) rest
  in
  let args = strip_trace [] args in
  let deep = List.mem "--deep" args in
  let selected = List.filter (fun a -> a <> "--deep") args in
  let table = experiments ~deep in
  (* Reject unknown names up front so `main.exe tabel4 fig7` fails fast
     instead of running fig7 first and erroring an hour in. *)
  (match
     List.filter
       (fun name -> not (List.mem name (usage_names table)))
       selected
   with
   | [] -> ()
   | unknown ->
     List.iter
       (fun name ->
         Printf.eprintf "unknown experiment %S; available: %s\n" name
           (String.concat ", " (usage_names table)))
       unknown;
     exit 2);
  (match !trace with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     ignore (Fl_obs.add_sink (Fl_obs.jsonl_sink oc));
     at_exit (fun () -> close_out oc));
  let run_one name =
    let f = List.assoc name table in
    Report.reset ();
    let t0 = Unix.gettimeofday () in
    f ();
    let wall = Unix.gettimeofday () -. t0 in
    Report.write ~experiment:name ~wall_s:wall;
    Printf.printf "[%s done in %.1fs]\n%!" name wall
  in
  match selected with
  | [] | [ "all" ] ->
    print_endline
      "Full-Lock experiment suite (scaled budgets; pass --deep for longer runs)";
    List.iter (fun (name, _) -> run_one name) table
  | names -> List.iter run_one names
