(* Experiment harness: one sub-command per table/figure of the paper, plus
   the supplementary security experiments, ablations and micro benches.

   Usage:  main.exe [experiment ...] [--deep]
           main.exe all            (default; every experiment, scaled budget)
           main.exe micro          (Bechamel micro-benchmarks)

   --deep raises sizes and timeouts toward (but nowhere near) the paper's
   2e6-second testbed budget. *)

let experiments ~deep =
  [
    "fig1", (fun () -> Exp_fig1.run ~deep ());
    "table1", (fun () -> Exp_table1.run ());
    "table2", (fun () -> Exp_table2.run ~deep ());
    "table3", (fun () -> Exp_table3.run ~deep ());
    "table4", (fun () -> Exp_table4.run ~deep ());
    "table5", (fun () -> Exp_table5.run ~deep ());
    "fig5", (fun () -> Exp_fig5.run ());
    "fig7", (fun () -> Exp_fig7.run ~deep ());
    "coverage", (fun () -> Exp_security.coverage ~deep ());
    "removal", (fun () -> Exp_security.removal ~deep ());
    "affine", (fun () -> Exp_security.affine ());
    "corruption", (fun () -> Exp_security.corruption ~deep ());
    "bdd", (fun () -> Exp_bdd.run ~deep ());
    "ablate", (fun () -> Exp_ablate.run ~deep ());
    "micro", (fun () -> Exp_micro.run ());
    "sim", (fun () -> Exp_micro.sim_throughput ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let deep = List.mem "--deep" args in
  let selected = List.filter (fun a -> a <> "--deep") args in
  let table = experiments ~deep in
  let run_one name =
    match List.assoc_opt name table with
    | Some f ->
      let t0 = Unix.gettimeofday () in
      f ();
      Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
    | None ->
      Printf.eprintf "unknown experiment %S; available: %s\n" name
        (String.concat ", " ("all" :: List.map fst table));
      exit 2
  in
  match selected with
  | [] | [ "all" ] ->
    print_endline
      "Full-Lock experiment suite (scaled budgets; pass --deep for longer runs)";
    List.iter (fun (name, _) -> run_one name) table
  | names -> List.iter run_one names
