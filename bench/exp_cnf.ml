(* CNF preprocessing experiment: SatELite-style simplification of the attack
   miters over the Table 4 grid.

   For every (circuit, PLR configuration) cell this measures (a) the
   before/after variable, clause and literal counts of the one-shot miter
   preprocessing pass plus the structural yield of the Inprocess engine on
   the same miter (notably recovered XOR rows — Full-Lock miters are
   XOR-saturated, so every cell should recover some), and (b) the CycSAT
   attack run three times under the same conflict budget — preprocessed +
   between-iterations inprocessing, preprocessed only, and reference —
   recording statuses and wall times.

   Preprocessing is an equisatisfiability-preserving rewrite, so the two
   paths must never *disagree on correctness*: a cell where one side
   returns a wrong key while the other breaks cleanly (or finds no key on
   a breakable instance) is a bug, and [statuses_match] in BENCH_cnf.json
   watches exactly that.  A TO/iter-vs-broken flip is different: the
   budget is counted in solver conflicts over a *changed* formula, so a
   cell sitting right at the budget boundary may land on either side of
   it.  Those flips are legitimate, counted separately as [budget_flips]
   (with [strict_statuses_match] reporting plain equality), while the
   wall-time ratio shows what the reduction buys. *)

module Bench_suite = Fl_netlist.Bench_suite
module Formula = Fl_cnf.Formula
module Miter = Fl_cnf.Miter
module Preprocess = Fl_sat.Preprocess
module Inprocess = Fl_sat.Inprocess
module Fulllock = Fl_core.Fulllock
module Cycsat = Fl_attacks.Cycsat
module Sat_attack = Fl_attacks.Sat_attack
module Locked = Fl_locking.Locked

type cell = {
  label : string;
  vars_before : int;
  vars_after : int;
  clauses_before : int;
  clauses_after : int;
  reduction_pct : float;
  xor_rows : int;  (* XOR constraints Inprocess recovers from the miter *)
  status_pre : string;
  status_ref : string;
  time_pre : float;
  time_ref : float;
  (* None when the inprocessed arm is disabled (--no-inprocess) *)
  status_inp : string option;
  time_inp : float option;
  (* None when no --portfolio/--cdcl-* flags were given.  The bench arm
     forces deterministic mode, so the cell is reproducible and the
     baseline statuses stay comparable at any --jobs width. *)
  status_pf : string option;
  time_pf : float option;
}

let status (r : Sat_attack.result) =
  match r.Sat_attack.status with
  | Sat_attack.Broken _ when r.Sat_attack.key_is_correct -> "broken"
  | Sat_attack.Broken _ -> "broken-wrong"
  | Sat_attack.Timeout -> "TO"
  | Sat_attack.No_key_found -> "no-key"
  | Sat_attack.Iteration_limit -> "iter"

(* Same frozen set Session uses: every variable the incremental attack
   clauses may mention. *)
let frozen_vars (m : Miter.t) =
  Array.concat
    [ m.Miter.inputs; m.Miter.keys_a; m.Miter.keys_b;
      m.Miter.outputs_a; m.Miter.outputs_b ]

let cell ~timeout ~max_conflicts ~inp_enabled ~inp_every ~portfolio ~name
    ~plr_n ~plr_count ~seed circuit =
  let rng = Random.State.make [| seed; plr_n; plr_count |] in
  let configs = List.init plr_count (fun _ -> Fulllock.default_config ~n:plr_n) in
  match Fulllock.lock rng ~policy:`Cyclic ~configs circuit with
  | exception Invalid_argument _ -> None
  | locked ->
    let miter = Miter.build locked.Locked.locked in
    let p =
      Preprocess.run ~label:name ~frozen:(frozen_vars miter)
        miter.Miter.formula
    in
    let st = Preprocess.stats p in
    (* Structural inprocessing yield on the raw miter (XOR patterns still
       intact): how many XOR rows the recovery pass finds per cell. *)
    let xor_rows =
      if not inp_enabled then 0
      else
        let miter = Miter.build locked.Locked.locked in
        let ip =
          Inprocess.run ~label:name ~frozen:(frozen_vars miter)
            miter.Miter.formula
        in
        (Inprocess.stats ip).Inprocess.xor_rows
    in
    let r_inp =
      if inp_enabled then
        Some
          (Cycsat.run ~timeout ~max_conflicts ~preprocess:true
             ~inprocess:true ~inprocess_every:inp_every locked)
      else None
    in
    let r_pf =
      match portfolio with
      | None -> None
      | Some spec ->
        Some
          (Cycsat.run ~timeout ~max_conflicts ~preprocess:true
             ~portfolio:{ spec with Fl_sat.Portfolio.deterministic = true }
             locked)
    in
    let r_pre = Cycsat.run ~timeout ~max_conflicts ~preprocess:true locked in
    let r_ref = Cycsat.run ~timeout ~max_conflicts ~preprocess:false locked in
    Some
      {
        label = Printf.sprintf "%s %dx%dx%d" name plr_count plr_n plr_n;
        vars_before = st.Preprocess.vars_before;
        vars_after = st.Preprocess.vars_after;
        clauses_before = st.Preprocess.clauses_before;
        clauses_after = st.Preprocess.clauses_after;
        reduction_pct =
          (if st.Preprocess.clauses_before = 0 then 0.0
           else
             100.0
             *. (1.0
                 -. float_of_int st.Preprocess.clauses_after
                    /. float_of_int st.Preprocess.clauses_before));
        xor_rows;
        status_pre = status r_pre;
        status_ref = status r_ref;
        time_pre = r_pre.Sat_attack.wall_time;
        time_ref = r_ref.Sat_attack.wall_time;
        status_inp = Option.map status r_inp;
        time_inp = Option.map (fun r -> r.Sat_attack.wall_time) r_inp;
        status_pf = Option.map status r_pf;
        time_pf = Option.map (fun r -> r.Sat_attack.wall_time) r_pf;
      }

let run ?(inprocess = { Fl_cli.enabled = None; every = None }) ?portfolio
    ~deep ~pool () =
  let inp_enabled = inprocess.Fl_cli.enabled <> Some false in
  let pf_enabled = portfolio <> None in
  let inp_every = Option.value inprocess.Fl_cli.every ~default:4 in
  let max_conflicts = if deep then 400_000 else 80_000 in
  let timeout = if deep then 1200.0 else 240.0 in
  let scale = if deep then 2 else 4 in
  let circuits =
    if deep then Bench_suite.names
    else [ "c432"; "c499"; "c880"; "c1355"; "apex2"; "i4" ]
  in
  let small = if deep then 8 else 4 and large = if deep then 16 else 8 in
  let configs = [ small, 1; small, 2; large, 1; large, 2 ] in
  let tasks =
    List.concat_map
      (fun name -> List.map (fun (n, count) -> name, n, count) configs)
      circuits
  in
  let cells =
    Fl_par.map_list pool
      (fun (name, plr_n, plr_count) ->
        let c = Bench_suite.load_scaled name ~scale in
        cell ~timeout ~max_conflicts ~inp_enabled ~inp_every ~portfolio ~name
          ~plr_n ~plr_count ~seed:(Hashtbl.hash name) c)
      tasks
    |> List.map Fl_par.get
    |> List.filter_map (fun x -> x)
  in
  let rows =
    List.map
      (fun c ->
        [
          c.label;
          Printf.sprintf "%d->%d" c.clauses_before c.clauses_after;
          Printf.sprintf "%.1f%%" c.reduction_pct;
          string_of_int c.xor_rows;
          Option.value c.status_inp ~default:"-";
          Option.value c.status_pf ~default:"-";
          c.status_pre;
          c.status_ref;
          (match c.time_inp with Some t -> Tables.seconds t | None -> "-");
          (match c.time_pf with Some t -> Tables.seconds t | None -> "-");
          Tables.seconds c.time_pre;
          Tables.seconds c.time_ref;
          (if c.time_ref > 0.0 then Printf.sprintf "%.2f" (c.time_pre /. c.time_ref)
           else "-");
          (match c.time_inp with
           | Some t when c.time_ref > 0.0 ->
             Printf.sprintf "%.2f" (t /. c.time_ref)
           | _ -> "-");
        ])
      cells
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "CNF simplification on the Table 4 grid (1/%d scale, budget %dk conflicts): \
          miter clause reduction, recovered XOR rows, and CycSAT time — \
          inprocessed vs preprocessed vs reference"
         scale (max_conflicts / 1000))
    [ "cell"; "clauses"; "red"; "xor"; "inp"; "pf"; "pre"; "ref"; "t_inp";
      "t_pf"; "t_pre"; "t_ref"; "r_pre"; "r_inp" ]
    rows;
  (* A budget flip is one path breaking (with a verified key — that is what
     "broken" means) while the other exhausts its conflict/iteration budget:
     a boundary artifact, not a disagreement about the instance.  Anything
     else that differs — a wrong key on one side, no-key vs broken — is. *)
  let budget_flip a b =
    match a, b with
    | "broken", ("TO" | "iter") | ("TO" | "iter"), "broken" -> true
    | _ -> false
  in
  (* Status lists per cell: two or three arms, compared pairwise. *)
  let arms c =
    c.status_pre :: c.status_ref
    :: ((match c.status_inp with Some s -> [ s ] | None -> [])
        @ (match c.status_pf with Some s -> [ s ] | None -> []))
  in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> x, y) rest @ pairs rest
  in
  let strict_match =
    List.for_all (fun c -> List.for_all (fun (a, b) -> a = b) (pairs (arms c))) cells
  in
  let statuses_match =
    List.for_all
      (fun c ->
        List.for_all (fun (a, b) -> a = b || budget_flip a b) (pairs (arms c)))
      cells
  in
  let budget_flips =
    List.length
      (List.filter
         (fun c -> List.exists (fun (a, b) -> a <> b) (pairs (arms c)))
         cells)
  in
  let max_reduction =
    List.fold_left (fun acc c -> max acc c.reduction_pct) 0.0 cells
  in
  let ratio_stats sel =
    let ratios =
      List.filter_map
        (fun c ->
          match sel c with
          | Some t when c.time_ref > 0.0 -> Some (t /. c.time_ref)
          | _ -> None)
        cells
    in
    let min_ratio = List.fold_left min infinity ratios in
    let geomean =
      match ratios with
      | [] -> 1.0
      | rs ->
        exp (List.fold_left (fun a r -> a +. log r) 0.0 rs
             /. float_of_int (List.length rs))
    in
    min_ratio, geomean
  in
  let min_ratio, geomean = ratio_stats (fun c -> Some c.time_pre) in
  let min_ratio_inp, geomean_inp = ratio_stats (fun c -> c.time_inp) in
  let min_ratio_pf, geomean_pf = ratio_stats (fun c -> c.time_pf) in
  let min_xor_rows =
    List.fold_left (fun acc c -> min acc c.xor_rows) max_int cells
  in
  Report.add_bool "statuses_match" statuses_match;
  Report.add_bool "strict_statuses_match" strict_match;
  Report.add_int "budget_flips" budget_flips;
  Report.add_float "max_clause_reduction_pct" max_reduction;
  Report.add_float "min_solve_ratio" min_ratio;
  Report.add_float "solve_ratio_geomean" geomean;
  if inp_enabled then begin
    Report.add_float "min_solve_ratio_inp" min_ratio_inp;
    Report.add_float "solve_ratio_inp_geomean" geomean_inp;
    Report.add_int "min_xor_rows"
      (if cells = [] then 0 else min_xor_rows)
  end;
  (* Informational, never gated: the baseline gate ignores numeric
     members present only in the current report, so a portfolio-armed
     run still gates cleanly against a portfolio-less baseline. *)
  if pf_enabled then begin
    Report.add_float "min_solve_ratio_pf" min_ratio_pf;
    Report.add_float "solve_ratio_pf_geomean" geomean_pf
  end;
  Report.add_int "cells" (List.length cells);
  Report.add_section "clause_reduction_pct"
    (List.map (fun c -> c.label, Fl_obs.Float c.reduction_pct) cells);
  Report.add_section "status_pre"
    (List.map (fun c -> c.label, Fl_obs.String c.status_pre) cells);
  Report.add_section "status_ref"
    (List.map (fun c -> c.label, Fl_obs.String c.status_ref) cells);
  if inp_enabled then begin
    Report.add_section "status_inp"
      (List.map
         (fun c ->
           c.label, Fl_obs.String (Option.value c.status_inp ~default:"-"))
         cells);
    Report.add_section "xor_rows"
      (List.map (fun c -> c.label, Fl_obs.Int c.xor_rows) cells);
    Report.add_section "solve_ratio_inp"
      (List.map
         (fun c ->
           ( c.label,
             match c.time_inp with
             | Some t when c.time_ref > 0.0 -> Fl_obs.Float (t /. c.time_ref)
             | _ -> Fl_obs.String "-" ))
         cells)
  end;
  if pf_enabled then begin
    Report.add_section "status_pf"
      (List.map
         (fun c ->
           c.label, Fl_obs.String (Option.value c.status_pf ~default:"-"))
         cells);
    Report.add_section "solve_ratio_pf"
      (List.map
         (fun c ->
           ( c.label,
             match c.time_pf with
             | Some t when c.time_ref > 0.0 -> Fl_obs.Float (t /. c.time_ref)
             | _ -> Fl_obs.String "-" ))
         cells)
  end;
  Report.add_section "solve_ratio"
    (List.map
       (fun c ->
         ( c.label,
           if c.time_ref > 0.0 then Fl_obs.Float (c.time_pre /. c.time_ref)
           else Fl_obs.String "-" ))
       cells);
  Report.add_alloc ();
  Report.add_parallelism ~jobs:(Fl_par.jobs pool) (Fl_par.last_stats pool);
  Printf.printf
    "statuses %s across %d cells (%d budget-boundary flip%s); best clause \
     reduction %.1f%%; solve-time ratio min %.2f, geomean %.2f%s\n"
    (if statuses_match then "consistent" else "DISAGREE ON CORRECTNESS")
    (List.length cells) budget_flips
    (if budget_flips = 1 then "" else "s")
    max_reduction min_ratio geomean
    ((if inp_enabled then
        Printf.sprintf "; inprocessed min %.2f, geomean %.2f, min xor rows %d"
          min_ratio_inp geomean_inp
          (if cells = [] then 0 else min_xor_rows)
      else "")
    ^
    if pf_enabled then
      Printf.sprintf "; portfolio(det) min %.2f, geomean %.2f" min_ratio_pf
        geomean_pf
    else "")
