(* Fig. 7: average clauses-to-variables ratio of the attack formula for
   different locking schemes — the paper's SAT-hardness metric.

   Measured like the paper measures it: on the formula *during
   deobfuscation*.  As the DIP loop accumulates I/O-constraint copies the
   formula is dominated by circuit copies whose key variables are shared, so
   the asymptotic ratio is (clauses of one copy) / (non-key variables of one
   copy).  The initial two-copy miter under-counts MUX-heavy schemes whose
   key leaves are free variables. *)

module Bench_suite = Fl_netlist.Bench_suite
module Circuit = Fl_netlist.Circuit
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock

(* Clauses per fresh (non-key) variable of one attack-formula circuit copy. *)
let asymptotic_ratio locked =
  let c = locked.Locked.locked in
  let f = Formula.create () in
  let keys = Formula.fresh_vars f (Circuit.num_keys c) in
  let vars_before = Formula.num_vars f in
  ignore (Tseytin.encode ~share_keys:keys f c);
  let fresh_vars = Formula.num_vars f - vars_before in
  float_of_int (Formula.num_clauses f) /. float_of_int fresh_vars

let schemes ~key_budget =
  [
    ("RLL (XOR)", fun rng c -> Fl_locking.Rll.lock rng ~key_bits:key_budget c);
    ("MUX-Lock", fun rng c -> Fl_locking.Mux_lock.lock rng ~key_bits:key_budget c);
    ("SARLock", fun rng c -> Fl_locking.Sarlock.lock rng ~key_bits:key_budget c);
    ("Anti-SAT", fun rng c -> Fl_locking.Antisat.lock rng ~key_bits:(2 * key_budget) c);
    ("SFLL-HD", fun rng c -> Fl_locking.Sfll.lock rng ~key_bits:key_budget ~h:2 c);
    ("Cyclic (SRC)", fun rng c -> Fl_locking.Cyclic_lock.lock rng ~cycles:key_budget c);
    ("LUT-Lock", fun rng c -> Fl_locking.Lut_lock.lock rng ~gates:(key_budget / 2) c);
    ("Cross-Lock", fun rng c -> Fl_locking.Cross_lock.lock rng ~n:8 c);
    ("Full-Lock", fun rng c -> Fulllock.lock_one rng ~n:8 c);
  ]

let run ~deep ~pool () =
  let scale = if deep then 2 else 4 in
  let hosts = [ "c432"; "c880"; "c1355" ] in
  let key_budget = 16 in
  (* One (scheme, host) ratio per task; averaged per scheme afterwards.
     The trajectory attack below stays sequential — it is a single run. *)
  let tasks =
    List.concat_map
      (fun (name, lock) -> List.map (fun host -> name, lock, host) hosts)
      (schemes ~key_budget)
  in
  let ratios =
    Fl_par.map_list pool
      (fun (name, lock, host) ->
        let c = Bench_suite.load_scaled host ~scale in
        let rng = Random.State.make [| Hashtbl.hash (name, host) |] in
        match lock rng c with
        | exception Invalid_argument _ -> None
        | locked -> Some (asymptotic_ratio locked))
      tasks
    |> List.map Fl_par.get
  in
  let per_scheme = List.length hosts in
  let results =
    List.mapi
      (fun i (name, _) ->
        let mine =
          List.filteri (fun j _ -> j / per_scheme = i) ratios
          |> List.filter_map Fun.id
        in
        let avg =
          List.fold_left ( +. ) 0.0 mine /. float_of_int (List.length mine)
        in
        name, avg)
      (schemes ~key_budget)
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) results in
  let peak = List.fold_left (fun acc (_, v) -> Float.max acc v) 1.0 sorted in
  let rows =
    List.map
      (fun (name, avg) ->
        [
          name;
          Printf.sprintf "%.2f" avg;
          String.make (max 1 (int_of_float (38.0 *. avg /. peak))) '#';
        ])
      sorted
  in
  Tables.print
    ~title:
      "Fig. 7 — clauses/variables ratio of the attack formula during deobfuscation (asymptotic per-copy, avg over hosts)"
    [ "scheme"; "clauses/vars"; "profile" ]
    rows;
  Report.add_section "clause_var_ratio"
    (List.map (fun (name, avg) -> name, Fl_obs.Float avg) sorted);
  Report.add_parallelism ~jobs:(Fl_par.jobs pool) (Fl_par.last_stats pool);
  print_endline
    "Shape reproduced: Full-Lock pushes the attack formula's ratio toward the\n\
     SAT-hard band (paper: 3.77, with Cross-Lock and LUT-Lock next); point-function\n\
     and XOR schemes stay lower.";
  (* A measured trajectory to go with the asymptotic table: run the real
     SAT attack on one locked host so the per-iteration records — DIP,
     solver-stat deltas, growing clause/var ratio — land in the trace
     (`--trace FILE`) and the endpoint lands in BENCH_fig7.json. *)
  let host = Bench_suite.load_scaled "c432" ~scale in
  let rng = Random.State.make [| 0xf17 |] in
  let locked = Fl_locking.Rll.lock rng ~key_bits:key_budget host in
  let timeout = if deep then 30.0 else 8.0 in
  let result = Fl_attacks.Sat_attack.run ~timeout locked in
  Format.printf "trajectory (RLL on c432/%d): %a@." scale
    Fl_attacks.Sat_attack.pp_result result;
  Report.add_section "trajectory"
    [
      "scheme", Fl_obs.String "RLL (XOR)";
      "host", Fl_obs.String "c432";
      ( "status",
        Fl_obs.String
          (match result.Fl_attacks.Sat_attack.status with
           | Fl_attacks.Sat_attack.Broken _ -> "broken"
           | Fl_attacks.Sat_attack.Timeout -> "timeout"
           | Fl_attacks.Sat_attack.Iteration_limit -> "iteration_limit"
           | Fl_attacks.Sat_attack.No_key_found -> "no_key_found") );
      "iterations", Fl_obs.Int result.Fl_attacks.Sat_attack.iterations;
      "wall_seconds", Fl_obs.Float result.Fl_attacks.Sat_attack.wall_time;
      ( "final_clause_var_ratio",
        Fl_obs.Float result.Fl_attacks.Sat_attack.clause_var_ratio );
      ( "conflicts",
        Fl_obs.Int result.Fl_attacks.Sat_attack.solver.Fl_sat.Cdcl.conflicts );
      ( "decisions",
        Fl_obs.Int result.Fl_attacks.Sat_attack.solver.Fl_sat.Cdcl.decisions );
    ]
