(* Security experiments beyond the SAT tables: permutation coverage
   (Section 3.1), removal attack (4.2.2), SPS, affine/algebraic attack
   (4.2.3) and output corruption (Section 2). *)

module Bench_suite = Fl_netlist.Bench_suite
module Cln = Fl_cln.Cln
module Coverage = Fl_cln.Coverage
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Removal = Fl_attacks.Removal
module Sps = Fl_attacks.Sps
module Affine = Fl_attacks.Affine
module Bypass = Fl_attacks.Bypass

(* The sweep experiments below fan one row per Fl_par task; rows come back
   in task-index order, so tables and summaries match --jobs 1 exactly. *)

let coverage ~deep ~pool () =
  let sizes = if deep then [ 4; 8; 16 ] else [ 4; 8 ] in
  let tasks =
    List.concat_map
      (fun n -> [ n, `Blocking; n, `Non_blocking ])
      sizes
  in
  let rows =
    Fl_par.map_list pool
      (fun (n, kind) ->
        let spec, label =
          match kind with
          | `Blocking -> Cln.blocking_spec ~n, "blocking (omega)"
          | `Non_blocking -> Cln.default_spec ~n, "almost non-blocking"
        in
        let r = Coverage.measure ~max_keys:(1 lsl 18) spec in
        [
          Printf.sprintf "%s N=%d" label n;
          string_of_int r.Coverage.distinct_permutations;
          string_of_int r.Coverage.total_permutations;
          Printf.sprintf "%.2f%%" (100.0 *. Coverage.coverage_fraction r);
          (if r.Coverage.exhaustive then "exhaustive"
           else Printf.sprintf "sampled %d" r.Coverage.keys_examined);
        ])
      tasks
    |> List.map Fl_par.get
  in
  Tables.print
    ~title:"Section 3.1 — permutation coverage: blocking vs almost non-blocking CLN"
    [ "network"; "distinct perms"; "N!"; "coverage"; "method" ]
    rows;
  Report.add_parallelism ~jobs:(Fl_par.jobs pool) (Fl_par.last_stats pool);
  print_endline
    "The blocking network realises only a sliver of the permutation space; the\n\
     LOG(N, log2N-2, 1) network approaches it — the basis of its SAT-hardness."

let host ~scale = Bench_suite.load_scaled "c880" ~scale

let removal ~deep ~pool () =
  let scale = if deep then 2 else 4 in
  let cases =
    [
      ("SARLock", fun rng c -> Fl_locking.Sarlock.lock rng ~key_bits:8 c);
      ("Anti-SAT", fun rng c -> Fl_locking.Antisat.lock rng ~key_bits:16 c);
      ("SFLL-HD (h=1)", fun rng c -> Fl_locking.Sfll.lock rng ~key_bits:8 ~h:1 c);
      ("RLL (XOR)", fun rng c -> Fl_locking.Rll.lock rng ~key_bits:8 c);
      ("Cross-Lock", fun rng c -> Fl_locking.Cross_lock.lock rng ~n:8 c);
      ("Full-Lock", fun rng c -> Fulllock.lock_one rng ~n:8 c);
    ]
  in
  let rows =
    Fl_par.map_list pool
      (fun (name, lock) ->
        let c = host ~scale in
        let rng = Random.State.make [| Hashtbl.hash name |] in
        let locked = lock rng c in
        let r = Removal.run locked in
        let sps = Sps.identifies_block locked in
        let bypass =
          if Fl_netlist.Circuit.is_acyclic locked.Locked.locked then
            match Bypass.run ~max_cubes:24 ~timeout:15.0 locked with
            | Bypass.Bypassed { cubes; overhead_gates; _ } ->
              Printf.sprintf "BROKEN (%d cubes, +%d gates)" (List.length cubes)
                overhead_gates
            | Bypass.Too_many_cubes { found; _ } ->
              Printf.sprintf "survives (>%d cubes)" (found - 1)
            | Bypass.Inconclusive -> "inconclusive"
          else "n/a (cyclic)"
        in
        [
          name;
          string_of_int r.Removal.removed_flip_gates;
          string_of_int r.Removal.bypassed_mux_islands;
          (if r.Removal.equivalent then "BROKEN" else "survives");
          (if sps then "flagged" else "hidden");
          bypass;
        ])
      cases
    |> List.map Fl_par.get
  in
  Tables.print
    ~title:"Section 4.2.2 — removal, SPS and bypass attacks"
    [ "scheme"; "flip gates cut"; "MUXes bypassed"; "removal"; "SPS"; "bypass" ]
    rows;
  Report.add_parallelism ~jobs:(Fl_par.jobs pool) (Fl_par.last_stats pool);
  print_endline
    "Point-function schemes are excised or bypassed outright; Full-Lock survives:\n\
     the twisted leading gates and key-programmed LUTs make every bypass guess\n\
     wrong and its corruption makes bypass comparators impractically large."

let affine () =
  let rng = Random.State.make [| 0xaff |] in
  let rows =
    [
      (let l = Fulllock.standalone_cln_lock (Cln.blocking_spec ~n:8) rng in
       let fit = Affine.attack_oracle l in
       [ "bare CLN (blocking, N=8)";
         (if fit.Affine.is_affine then "YES — y = A.x + b recovered" else "no");
         string_of_int fit.Affine.counterexamples ]);
      (let l = Fulllock.standalone_cln_lock (Cln.default_spec ~n:8) rng in
       let fit = Affine.attack_oracle l in
       [ "bare CLN (non-blocking, N=8)";
         (if fit.Affine.is_affine then "YES — y = A.x + b recovered" else "no");
         string_of_int fit.Affine.counterexamples ]);
      (let spec = Cln.default_spec ~n:8 in
       let key = Cln.random_routable_key spec rng in
       let action = Cln.decode spec ~key in
       let plr x =
         let routed = Cln.apply_action action x in
         Array.init 4 (fun i -> routed.(2 * i) && routed.((2 * i) + 1))
       in
       let fit = Affine.fit_function ~arity:8 plr in
       [ "PLR (CLN + LUT layer)";
         (if fit.Affine.is_affine then "YES" else "no — non-linear");
         string_of_int fit.Affine.counterexamples ]);
    ]
  in
  Tables.print
    ~title:"Section 4.2.3 — algebraic (affine) attack"
    [ "target"; "affine-expressible"; "counterexamples" ]
    rows;
  print_endline
    "A routing-only CLN is an affine map over GF(2) and falls to n+1 queries; the\n\
     LUT layer of the PLR destroys linearity (the paper's argument verbatim)."

let corruption ~deep ~pool () =
  let scale = if deep then 2 else 4 in
  let cases =
    [
      ("SARLock", fun rng c -> Fl_locking.Sarlock.lock rng ~key_bits:8 c);
      ("Anti-SAT", fun rng c -> Fl_locking.Antisat.lock rng ~key_bits:16 c);
      ("SFLL-HD (h=2)", fun rng c -> Fl_locking.Sfll.lock rng ~key_bits:8 ~h:2 c);
      ("RLL (XOR)", fun rng c -> Fl_locking.Rll.lock rng ~key_bits:8 c);
      ("LUT-Lock", fun rng c -> Fl_locking.Lut_lock.lock rng ~gates:6 c);
      ("Cyclic (SRC)", fun rng c -> Fl_locking.Cyclic_lock.lock rng ~cycles:6 c);
      ("Cross-Lock", fun rng c -> Fl_locking.Cross_lock.lock rng ~n:8 c);
      ("Full-Lock", fun rng c -> Fulllock.lock_one rng ~n:8 c);
    ]
  in
  let rows =
    Fl_par.map_list pool
      (fun (name, lock) ->
        let c = host ~scale in
        let rng = Random.State.make [| Hashtbl.hash name; 3 |] in
        let locked = lock rng c in
        let corr =
          Locked.output_corruption_fast ~trials:32 ~batches:2 locked
            (Random.State.make [| 4 |])
        in
        (* Exact (BDD model-counted) corruption of one fixed wrong key, when
           the BDD stays tractable. *)
        let exact =
          if not (Fl_netlist.Circuit.is_acyclic locked.Locked.locked) then "n/a"
          else begin
            let wrong = Array.map not locked.Locked.correct_key in
            match Fl_bdd.Bdd.exact_corruption ~node_limit:2_000_000 locked ~key:wrong with
            | v -> Printf.sprintf "%.4f" v
            | exception Fl_bdd.Bdd.Too_large -> "BDD blow-up"
          end
        in
        [
          name;
          Printf.sprintf "%.4f" corr;
          exact;
          String.make (max 1 (int_of_float (40.0 *. Float.min 1.0 (corr *. 2.0)))) '#';
        ])
      cases
    |> List.map Fl_par.get
  in
  Tables.print
    ~title:"Section 2 — output corruption under random wrong keys"
    [ "scheme"; "sampled (random keys)"; "exact (one wrong key, BDD)"; "profile" ]
    rows;
  Report.add_parallelism ~jobs:(Fl_par.jobs pool) (Fl_par.last_stats pool);
  print_endline
    "Full-Lock corrupts broadly under wrong keys, unlike the point-function\n\
     schemes whose unactivated ICs behave almost correctly (the paper's critique)."
