(* Bechamel micro-benchmarks: one Test.make per table/figure kernel, so the
   cost of each experiment's inner loop is tracked over time. *)

open Bechamel
open Toolkit

module Generator = Fl_netlist.Generator
module Sim = Fl_netlist.Sim
module Bench_suite = Fl_netlist.Bench_suite
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin
module Miter = Fl_cnf.Miter
module Cln = Fl_cln.Cln
module Fulllock = Fl_core.Fulllock
module Ppa = Fl_ppa.Ppa

let fig1_kernel =
  (* one hard random 3-SAT instance at the phase transition *)
  let rng = Random.State.make [| 1 |] in
  let f = Fl_sat.Random_sat.fixed_length rng ~num_vars:30 ~num_clauses:129 ~k:3 in
  Test.make ~name:"fig1: dpll @ ratio 4.3 (30 vars)"
    (Staged.stage (fun () -> ignore (Fl_sat.Dpll.solve f)))

let table2_kernel =
  let rng = Random.State.make [| 2 |] in
  let locked = Fulllock.standalone_cln_lock (Cln.blocking_spec ~n:8) rng in
  Test.make ~name:"table2: sat attack on blocking CLN n=8"
    (Staged.stage (fun () ->
         ignore (Fl_attacks.Sat_attack.run ~timeout:30.0 locked)))

let table3_kernel =
  Test.make ~name:"table3: ppa of CLN n=64"
    (Staged.stage (fun () -> ignore (Ppa.of_cln (Cln.default_spec ~n:64))))

let table4_kernel =
  let c = Bench_suite.load_scaled "c432" ~scale:4 in
  Test.make ~name:"table4: full-lock insertion (n=8, cyclic)"
    (Staged.stage (fun () ->
         let rng = Random.State.make [| 4 |] in
         ignore (Fulllock.lock_one rng ~policy:`Cyclic ~n:8 c)))

let table5_kernel =
  let c = Bench_suite.load_scaled "c432" ~scale:4 in
  let rng = Random.State.make [| 5 |] in
  let locked = Fulllock.lock_one rng ~policy:`Cyclic ~n:8 c in
  Test.make ~name:"table5: cycsat preprocessing (NC conditions)"
    (Staged.stage (fun () ->
         let f = Formula.create () in
         let vars =
           Formula.fresh_vars f (Fl_locking.Locked.num_key_bits locked)
         in
         Fl_attacks.Cycsat.no_cycle_condition locked.Fl_locking.Locked.locked f vars))

let fig7_kernel =
  let c = Bench_suite.load_scaled "c880" ~scale:4 in
  let rng = Random.State.make [| 7 |] in
  let locked = Fulllock.lock_one rng ~n:8 c in
  Test.make ~name:"fig7: miter construction + ratio"
    (Staged.stage (fun () ->
         ignore (Miter.clause_variable_ratio locked.Fl_locking.Locked.locked)))

let substrate_kernels =
  [
    (let c = Bench_suite.load_scaled "c1355" ~scale:2 in
     Test.make ~name:"substrate: tseytin encode (c1355/2)"
       (Staged.stage (fun () ->
            let f = Formula.create () in
            ignore (Tseytin.encode f c))));
    (let c = Bench_suite.load_scaled "c1355" ~scale:2 in
     let rng = Random.State.make [| 8 |] in
     let inputs = Sim.random_vector rng (Fl_netlist.Circuit.num_inputs c) in
     Test.make ~name:"substrate: simulation (c1355/2)"
       (Staged.stage (fun () -> ignore (Sim.eval c ~inputs ~keys:[||]))));
    Test.make ~name:"substrate: cln build n=64"
      (Staged.stage (fun () -> ignore (Cln.standalone (Cln.default_spec ~n:64))));
    (let profile =
       { Generator.num_inputs = 32; num_outputs = 16; num_gates = 1000;
         max_fanin = 4; and_bias = 0.8 }
     in
     Test.make ~name:"substrate: generator 1000 gates"
       (Staged.stage (fun () -> ignore (Generator.random ~seed:9 ~name:"g" profile))));
  ]

let all_tests =
  Test.make_grouped ~name:"fulllock"
    ([ fig1_kernel; table2_kernel; table3_kernel; table4_kernel; table5_kernel;
       fig7_kernel ]
     @ substrate_kernels)

(* Eval-throughput microbenchmark for the compiled-evaluator PR: scalar
   uncached reference vs cached view vs word-level, plus the cold
   build-a-view cost.  Emits BENCH_sim.json so the perf trajectory of the
   simulation hot path is tracked across PRs. *)
let sim_throughput () =
  let name = "c432" in
  let c = Bench_suite.load name in
  let rng = Random.State.make [| 0x51b |] in
  let inputs = Sim.random_vector rng (Fl_netlist.Circuit.num_inputs c) in
  let packed_inputs =
    Fl_netlist.Sim_word.random_words rng
      ~width:(Fl_netlist.Circuit.num_inputs c)
  in
  (* Time [f] for at least [budget] seconds and return calls/second. *)
  let rate ?(budget = 0.4) f =
    for _ = 1 to 3 do f () done;
    let calls = ref 0 in
    let t0 = Unix.gettimeofday () in
    let elapsed () = Unix.gettimeofday () -. t0 in
    while elapsed () < budget do
      f ();
      incr calls
    done;
    float_of_int !calls /. elapsed ()
  in
  let uncached =
    rate (fun () -> ignore (Sim.eval_reference c ~inputs ~keys:[||]))
  in
  let cached = rate (fun () -> ignore (Sim.eval c ~inputs ~keys:[||])) in
  let word_passes =
    rate (fun () ->
        ignore (Fl_netlist.Sim_word.eval c ~inputs:packed_inputs ~keys:[||]))
  in
  (* Cold path: a physically fresh circuit forces a full view build on its
     first evaluation. *)
  let fresh = Array.init 24 (fun _ -> Bench_suite.load name) in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun c -> ignore (Sim.eval c ~inputs ~keys:[||]))
    fresh;
  let cold_first_eval_us =
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int (Array.length fresh)
  in
  let lanes = Fl_netlist.Sim_word.lanes in
  let speedup = cached /. uncached in
  (* BENCH_sim.json is written by the harness via Report; these keys are
     the stable schema tracked across PRs. *)
  Report.add_string "circuit" name;
  Report.add_int "gates" (Fl_netlist.Circuit.num_gates c);
  Report.add_int "lanes" lanes;
  Report.add_float "scalar_uncached_evals_per_sec" uncached;
  Report.add_float "scalar_cached_evals_per_sec" cached;
  Report.add_float "word_passes_per_sec" word_passes;
  Report.add_float "word_vectors_per_sec" (word_passes *. float_of_int lanes);
  Report.add_float "cold_first_eval_us" cold_first_eval_us;
  Report.add_float "speedup_cached_vs_uncached" speedup;
  Tables.print ~title:"Simulation throughput (c432, evals/sec)"
    [ "path"; "evals/sec" ]
    [
      [ "scalar, uncached reference"; Printf.sprintf "%.0f" uncached ];
      [ "scalar, cached view"; Printf.sprintf "%.0f" cached ];
      [ "word-level (x63 vectors)";
        Printf.sprintf "%.0f" (word_passes *. float_of_int lanes) ];
      [ "cold first eval (us)"; Printf.sprintf "%.1f" cold_first_eval_us ];
      [ "speedup cached/uncached"; Printf.sprintf "%.2fx" speedup ];
    ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (v :: _) -> v
        | Some [] | None -> Float.nan
      in
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      rows := [ name; pretty ] :: !rows)
    results;
  let sorted = List.sort compare !rows in
  Tables.print ~title:"Micro-benchmarks (Bechamel, monotonic clock, OLS)"
    [ "kernel"; "time/run" ] sorted
